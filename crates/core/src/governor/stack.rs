//! Composable governor middleware: tower-style decorator layers over
//! `dyn Governor`.
//!
//! Cross-cutting hardening used to live *inside* the governors — both
//! [`HarmoniaGovernor`](super::HarmoniaGovernor) and
//! [`CappedGovernor`](super::CappedGovernor) carried an `Option<Watchdog>`
//! with copy-pasted transition handling, and counter sanitization was bolted
//! onto the runtime. This module extracts those concerns into
//! [`GovernorLayer`] decorators that wrap any [`Governor`] and compose
//! freely:
//!
//! * [`WatchdogLayer`] — the safe-state fallback state machine
//!   ([`Watchdog`]), written once. What counts as anomalous is pluggable
//!   via [`AnomalyCheck`]: [`CounterCheck`] judges counter plausibility and
//!   throughput collapse, [`CapCheck`] judges power-cap violations.
//! * [`SanitizeLayer`] — per-kernel counter sanitization
//!   ([`CounterSanitizer`]), applied through the
//!   [`Governor::condition`] hook so the *conditioned* measurement feeds
//!   the runtime's power accounting exactly where the old
//!   `Runtime::with_sanitizer` stage ran.
//! * [`TraceLayer`] — tees every trace event the inner governor emits into
//!   a side [`TraceHandle`] tap without stealing it from the primary sink.
//!
//! Layers are name-transparent (`name()` forwards inward) so report and
//! trace bytes do not change when a stack replaces a hand-hardened
//! governor. Named stacks are assembled by the
//! [`PolicySpec`](super::PolicySpec) registry.
//!
//! Two pieces of shared state thread through a stack:
//!
//! * [`DecisionLedger`] — the per-kernel *granted* configuration, written
//!   by whichever layer decided last (the outermost cap decorator
//!   overwrites the watchdog's pre-clamp decision), read by actuation
//!   checks.
//! * [`PolicyStats`] — cloneable atomic counters (cap violations,
//!   violations while parked, fallback engagements, sanitizer rejects)
//!   that stay readable after the stack is boxed into a `dyn Governor`.

use crate::governor::watchdog::{Watchdog, WatchdogConfig, WatchdogTransition};
use crate::governor::Governor;
use crate::sanitize::{self, CounterSanitizer, SanitizerConfig};
use crate::telemetry::{TraceEvent, TraceHandle};
use harmonia_power::{Activity, PowerModel};
use harmonia_sim::{CounterSample, KernelProfile};
use harmonia_types::{HwConfig, Seconds, Watts};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A boxed dynamic governor — the currency [`GovernorLayer`]s trade in.
pub type BoxGovernor<'a> = Box<dyn Governor + 'a>;

/// A middleware blueprint: consumes an inner governor and returns the
/// decorated stack. Mirrors tower's `Layer<S>`, specialized to boxed
/// governors so heterogeneous stacks compose without generic bloat.
pub trait GovernorLayer<'a> {
    /// Wraps `inner` in this layer's decorator.
    fn layer(self, inner: BoxGovernor<'a>) -> BoxGovernor<'a>;
}

// ---------------------------------------------------------------------------
// Shared stack state
// ---------------------------------------------------------------------------

/// Cloneable handle to the per-kernel *granted* (post-decision, post-clamp)
/// configuration. Every decorator that decides writes its output here, so
/// the outermost writer — the cap clamp, when present — wins, and actuation
/// checks deeper in the stack compare against what was actually granted.
#[derive(Debug, Clone, Default)]
pub struct DecisionLedger {
    inner: Arc<Mutex<HashMap<String, HwConfig>>>,
}

impl DecisionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `cfg` as the granted configuration for `kernel`.
    pub fn grant(&self, kernel: &str, cfg: HwConfig) {
        self.inner
            .lock()
            .expect("ledger poisoned")
            .insert(kernel.to_string(), cfg);
    }

    /// The most recently granted configuration for `kernel`.
    pub fn granted(&self, kernel: &str) -> Option<HwConfig> {
        self.inner.lock().expect("ledger poisoned").get(kernel).copied()
    }
}

/// Cloneable atomic counters exposing a stack's hardening activity after it
/// has been boxed into a `dyn Governor`. All handles cloned from one
/// `PolicyStats` share the same counters.
#[derive(Debug, Clone, Default)]
pub struct PolicyStats {
    cap_violations: Arc<AtomicU64>,
    violations_while_fallback: Arc<AtomicU64>,
    fallback_engagements: Arc<AtomicU64>,
    sanitizer_rejects: Arc<AtomicU64>,
    /// Observation intervals spent on each degradation-ladder rung, indexed
    /// by `Rung::index()` (full / cg-only / freq-only / safe-state).
    rung_residency: Arc<[AtomicU64; 4]>,
    rung_demotions: Arc<AtomicU64>,
    rung_promotions: Arc<AtomicU64>,
}

impl PolicyStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observed intervals whose projected card power exceeded the cap
    /// (5% enforcement tolerance), fallback engaged or not.
    pub fn cap_violations(&self) -> u64 {
        self.cap_violations.load(Ordering::Relaxed)
    }

    /// Cap violations observed while safe-state fallback was engaged.
    pub fn violations_while_fallback(&self) -> u64 {
        self.violations_while_fallback.load(Ordering::Relaxed)
    }

    /// Total safe-state fallback engagements across all watchdog layers.
    pub fn fallback_engagements(&self) -> u64 {
        self.fallback_engagements.load(Ordering::Relaxed)
    }

    /// Total counter readings rejected and substituted by sanitize layers.
    pub fn sanitizer_rejects(&self) -> u64 {
        self.sanitizer_rejects.load(Ordering::Relaxed)
    }

    /// Observation intervals spent on each ladder rung, indexed by
    /// `Rung::index()`. All zero for stacks without a
    /// [`DegradeLayer`](super::DegradeLayer).
    pub fn rung_residency(&self) -> [u64; 4] {
        [
            self.rung_residency[0].load(Ordering::Relaxed),
            self.rung_residency[1].load(Ordering::Relaxed),
            self.rung_residency[2].load(Ordering::Relaxed),
            self.rung_residency[3].load(Ordering::Relaxed),
        ]
    }

    /// Total ladder demotions (one rung down each).
    pub fn rung_demotions(&self) -> u64 {
        self.rung_demotions.load(Ordering::Relaxed)
    }

    /// Total ladder promotions (one rung up each).
    pub fn rung_promotions(&self) -> u64 {
        self.rung_promotions.load(Ordering::Relaxed)
    }

    pub(crate) fn count_cap_violation(&self) {
        self.cap_violations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_violation_while_fallback(&self) {
        self.violations_while_fallback.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_fallback_engagement(&self) {
        self.fallback_engagements.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_sanitizer_rejects(&self, total: u64) {
        self.sanitizer_rejects.store(total, Ordering::Relaxed);
    }

    pub(crate) fn count_rung_residency(&self, index: usize) {
        self.rung_residency[index].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_rung_demotion(&self) {
        self.rung_demotions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_rung_promotion(&self) {
        self.rung_promotions.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Anomaly checks
// ---------------------------------------------------------------------------

/// The pluggable "what counts as anomalous" half of a [`WatchdogLayer`].
/// The layer owns the [`Watchdog`] state machine and transition telemetry;
/// the check owns the domain judgement.
pub trait AnomalyCheck {
    /// Judges one observation interval. Returns the anomaly label to report
    /// via [`TraceEvent::FaultDetected`], or `None` for a clean interval.
    ///
    /// `granted` is the ledger's post-decision configuration for the kernel
    /// (for actuation-mismatch checks) and `engaged_before` whether
    /// fallback was already engaged when the interval was observed —
    /// checks that learn from clean intervals (peak-rate tracking) or gate
    /// on actuation must respect it.
    fn verdict(
        &mut self,
        kernel: &KernelProfile,
        cfg: HwConfig,
        counters: &CounterSample,
        config: &WatchdogConfig,
        granted: Option<HwConfig>,
        engaged_before: bool,
    ) -> Option<&'static str>;

    /// Whether anomalous (or fallback-tainted) samples must be withheld
    /// from the inner governor's learning loops. Counter anomalies
    /// quarantine — the sample is garbage or was produced under the pinned
    /// safe state; cap violations do not — the inner policy must keep
    /// learning from real counters to steer back under the envelope.
    fn quarantines(&self) -> bool;
}

/// Counter-plausibility anomaly check: implausible or dead samples and
/// throughput collapse relative to the kernel's best clean rate, plus an
/// optional granted-vs-ran actuation check. Quarantines.
#[derive(Debug, Default)]
pub struct CounterCheck {
    /// Best clean VALU rate per kernel, for the collapse check.
    peak_rate: HashMap<String, f64>,
}

impl CounterCheck {
    /// A check with no throughput history yet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnomalyCheck for CounterCheck {
    fn verdict(
        &mut self,
        kernel: &KernelProfile,
        cfg: HwConfig,
        counters: &CounterSample,
        config: &WatchdogConfig,
        granted: Option<HwConfig>,
        engaged_before: bool,
    ) -> Option<&'static str> {
        let rate_now = if counters.duration.value() > 0.0 {
            counters.valu_insts as f64 / counters.duration.value()
        } else {
            0.0
        };
        let peak = self.peak_rate.get(&kernel.name).copied().unwrap_or(0.0);
        let what: Option<&'static str> = if !sanitize::counters_plausible(counters) {
            Some("implausible counters")
        } else if sanitize::dead_sample(counters) {
            Some("dead counter sample")
        } else if config.collapse_ratio > 0.0
            && peak > 0.0
            && rate_now < config.collapse_ratio * peak
        {
            Some("throughput collapse")
        } else if config.check_actuation
            && !engaged_before
            && granted.is_some_and(|g| g != cfg)
        {
            Some("actuation mismatch")
        } else {
            None
        };
        if what.is_none() && !engaged_before && rate_now.is_finite() && rate_now > peak {
            self.peak_rate.insert(kernel.name.clone(), rate_now);
        }
        what
    }

    fn quarantines(&self) -> bool {
        true
    }
}

/// Power-envelope anomaly check: projected card power over the cap (with
/// the 5% enforcement tolerance), plus an optional granted-vs-ran actuation
/// check. Does not quarantine — the inner policy keeps learning so it can
/// steer back under the envelope.
pub struct CapCheck<'a> {
    power: &'a PowerModel,
    cap: Watts,
    stats: PolicyStats,
}

impl<'a> CapCheck<'a> {
    /// A check enforcing `cap` under `power`'s projection, accounting
    /// violations-while-parked into `stats`.
    pub fn new(power: &'a PowerModel, cap: Watts, stats: PolicyStats) -> Self {
        Self { power, cap, stats }
    }
}

impl AnomalyCheck for CapCheck<'_> {
    fn verdict(
        &mut self,
        _kernel: &KernelProfile,
        cfg: HwConfig,
        counters: &CounterSample,
        config: &WatchdogConfig,
        granted: Option<HwConfig>,
        engaged_before: bool,
    ) -> Option<&'static str> {
        let activity = Activity {
            valu_activity: counters.valu_activity(),
            dram_bytes_per_sec: counters.dram_bytes_per_sec(),
            dram_traffic_fraction: counters.ic_activity,
        };
        // NaN projections (glitched telemetry) fail the comparison and are
        // not counted — the counter watchdog catches implausible samples.
        let over = self.power.card_pwr(cfg, &activity).value() > self.cap.value() * 1.05;
        if over {
            if engaged_before {
                self.stats.count_violation_while_fallback();
            }
            Some("cap violation")
        } else if config.check_actuation
            && !engaged_before
            && granted.is_some_and(|g| g != cfg)
        {
            Some("actuation mismatch")
        } else {
            None
        }
    }

    fn quarantines(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// WatchdogLayer
// ---------------------------------------------------------------------------

/// Blueprint for the safe-state fallback decorator: one [`Watchdog`] state
/// machine plus a pluggable [`AnomalyCheck`]. While engaged, decisions pin
/// to the safe state and the inner governor's `decide` is bypassed;
/// quarantining checks also withhold tainted samples from the inner
/// governor's learning loops.
pub struct WatchdogLayer<'a> {
    config: WatchdogConfig,
    check: Box<dyn AnomalyCheck + 'a>,
    ledger: DecisionLedger,
    stats: PolicyStats,
}

impl<'a> WatchdogLayer<'a> {
    /// A watchdog judging anomalies with `check`.
    pub fn with_check(config: WatchdogConfig, check: Box<dyn AnomalyCheck + 'a>) -> Self {
        Self {
            config,
            check,
            ledger: DecisionLedger::new(),
            stats: PolicyStats::new(),
        }
    }

    /// The counter-plausibility watchdog ([`CounterCheck`]): implausible
    /// counters, dead samples, and throughput collapses count as anomalous
    /// intervals, and suspect samples never reach the inner learning loops.
    pub fn counters(config: WatchdogConfig) -> Self {
        Self::with_check(config, Box::new(CounterCheck::new()))
    }

    /// The power-envelope watchdog ([`CapCheck`]): cap-violation streaks
    /// and granted-vs-ran actuation mismatches count as anomalous
    /// intervals; the inner governor still observes every sample.
    pub fn cap(config: WatchdogConfig, power: &'a PowerModel, cap: Watts, stats: &PolicyStats) -> Self {
        Self::with_check(config, Box::new(CapCheck::new(power, cap, stats.clone())))
            .with_stats(stats)
    }

    /// Shares `stats` so fallback engagements are counted into an external
    /// handle (registry-built stacks report through
    /// [`Policy::stats`](super::Policy)).
    pub fn with_stats(mut self, stats: &PolicyStats) -> Self {
        self.stats = stats.clone();
        self
    }

    /// The ledger this layer's decisions are recorded in. Hand it to an
    /// outer [`CappedGovernor`](super::CappedGovernor) (via `with_ledger`)
    /// so the post-clamp grant overwrites the pre-clamp decision and the
    /// actuation check compares against what was actually granted.
    pub fn ledger(&self) -> DecisionLedger {
        self.ledger.clone()
    }
}

impl<'a> GovernorLayer<'a> for WatchdogLayer<'a> {
    fn layer(self, inner: BoxGovernor<'a>) -> BoxGovernor<'a> {
        Box::new(WatchdogGovernor {
            inner,
            watchdog: Watchdog::new(self.config),
            check: self.check,
            ledger: self.ledger,
            stats: self.stats,
            trace: TraceHandle::disabled(),
        })
    }
}

/// The decorator produced by [`WatchdogLayer`].
struct WatchdogGovernor<'a> {
    inner: BoxGovernor<'a>,
    watchdog: Watchdog,
    check: Box<dyn AnomalyCheck + 'a>,
    ledger: DecisionLedger,
    stats: PolicyStats,
    trace: TraceHandle,
}

impl Governor for WatchdogGovernor<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace.clone();
        self.inner.set_trace(trace);
    }

    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig {
        // While fallback is engaged the inner policy is bypassed entirely.
        let cfg = if self.watchdog.engaged() {
            self.watchdog.safe()
        } else {
            self.inner.decide(kernel, iteration)
        };
        self.ledger.grant(&kernel.name, cfg);
        cfg
    }

    fn condition(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        time: Seconds,
        counters: CounterSample,
    ) -> (Seconds, CounterSample) {
        self.inner.condition(kernel, iteration, cfg, time, counters)
    }

    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    ) {
        let engaged_before = self.watchdog.engaged();
        let granted = self.ledger.granted(&kernel.name);
        let what = self.check.verdict(
            kernel,
            cfg,
            counters,
            self.watchdog.config(),
            granted,
            engaged_before,
        );
        if let Some(what) = what {
            self.trace.emit(|| TraceEvent::FaultDetected {
                kernel: kernel.name.clone(),
                iteration,
                what: what.to_string(),
            });
        }
        match self.watchdog.tick(what.is_some()) {
            WatchdogTransition::Engaged => {
                self.stats.count_fallback_engagement();
                let safe = self.watchdog.safe();
                let hold = self.watchdog.hold();
                self.trace.emit(|| TraceEvent::FallbackEngaged {
                    kernel: kernel.name.clone(),
                    iteration,
                    safe: safe.into(),
                    hold,
                });
            }
            WatchdogTransition::Released => {
                self.trace.emit(|| TraceEvent::FallbackReleased {
                    kernel: kernel.name.clone(),
                    iteration,
                });
            }
            WatchdogTransition::None => {}
        }
        // Quarantine: an anomalous sample is garbage, and one observed
        // while (or just before) fallback was engaged was produced under
        // the pinned safe state — neither may reach the learning loops.
        if self.check.quarantines() && (engaged_before || what.is_some()) {
            return;
        }
        self.inner.observe(kernel, iteration, cfg, counters);
    }
}

// ---------------------------------------------------------------------------
// SanitizeLayer
// ---------------------------------------------------------------------------

/// Blueprint for the counter-sanitization decorator: every raw measurement
/// is finite/range-checked, outlier-filtered, and substituted from the last
/// good reading *before* the runtime accounts power/energy from it and
/// before any inner governor observes it (the [`Governor::condition`]
/// hook).
#[derive(Debug, Clone, Default)]
pub struct SanitizeLayer<'a> {
    config: SanitizerConfig,
    stats: PolicyStats,
    power: Option<&'a PowerModel>,
}

impl<'a> SanitizeLayer<'a> {
    /// A sanitize layer with the given tuning.
    pub fn new(config: SanitizerConfig) -> Self {
        Self {
            config,
            stats: PolicyStats::new(),
            power: None,
        }
    }

    /// Shares `stats` so rejects are counted into an external handle.
    pub fn with_stats(mut self, stats: &PolicyStats) -> Self {
        self.stats = stats.clone();
        self
    }

    /// Arms the sanitizer's power-aware plausibility check (see
    /// [`CounterSanitizer::with_power`]).
    pub fn with_power(mut self, power: &'a PowerModel) -> Self {
        self.power = Some(power);
        self
    }
}

impl<'a> GovernorLayer<'a> for SanitizeLayer<'a> {
    fn layer(self, inner: BoxGovernor<'a>) -> BoxGovernor<'a> {
        let mut sanitizer = CounterSanitizer::new(self.config);
        if let Some(power) = self.power {
            sanitizer = sanitizer.with_power(power);
        }
        Box::new(SanitizeGovernor {
            inner,
            sanitizer,
            stats: self.stats,
            trace: TraceHandle::disabled(),
        })
    }
}

/// The decorator produced by [`SanitizeLayer`].
struct SanitizeGovernor<'a> {
    inner: BoxGovernor<'a>,
    sanitizer: CounterSanitizer<'a>,
    stats: PolicyStats,
    trace: TraceHandle,
}

impl Governor for SanitizeGovernor<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace.clone();
        self.inner.set_trace(trace);
    }

    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig {
        self.inner.decide(kernel, iteration)
    }

    fn condition(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        time: Seconds,
        counters: CounterSample,
    ) -> (Seconds, CounterSample) {
        let (time, counters) =
            self.sanitizer
                .sanitize(&kernel.name, iteration, cfg, time, counters, &self.trace);
        self.stats.record_sanitizer_rejects(self.sanitizer.rejects());
        self.inner.condition(kernel, iteration, cfg, time, counters)
    }

    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    ) {
        self.inner.observe(kernel, iteration, cfg, counters);
    }
}

// ---------------------------------------------------------------------------
// TraceLayer
// ---------------------------------------------------------------------------

/// Blueprint for the trace-tap decorator: the inner governor's events are
/// teed into this layer's side [`TraceHandle`] *in addition to* whatever
/// primary handle the runtime installs — observing a stack's decisions
/// without stealing them from the main trace.
#[derive(Debug, Clone)]
pub struct TraceLayer {
    tap: TraceHandle,
}

impl TraceLayer {
    /// A layer teeing into `tap`.
    pub fn new(tap: TraceHandle) -> Self {
        Self { tap }
    }

    /// The side handle events are teed into.
    pub fn tap(&self) -> &TraceHandle {
        &self.tap
    }
}

impl<'a> GovernorLayer<'a> for TraceLayer {
    fn layer(self, mut inner: BoxGovernor<'a>) -> BoxGovernor<'a> {
        // Seed the tap immediately: a stack that never sees the runtime's
        // set_trace still records into the tap.
        inner.set_trace(TraceHandle::disabled().tee(&self.tap));
        Box::new(TraceGovernor {
            inner,
            tap: self.tap,
        })
    }
}

/// The decorator produced by [`TraceLayer`].
struct TraceGovernor<'a> {
    inner: BoxGovernor<'a>,
    tap: TraceHandle,
}

impl Governor for TraceGovernor<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.inner.set_trace(trace.tee(&self.tap));
    }

    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig {
        self.inner.decide(kernel, iteration)
    }

    fn condition(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        time: Seconds,
        counters: CounterSample,
    ) -> (Seconds, CounterSample) {
        self.inner.condition(kernel, iteration, cfg, time, counters)
    }

    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    ) {
        self.inner.observe(kernel, iteration, cfg, counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::BaselineGovernor;

    fn kernel() -> KernelProfile {
        KernelProfile::builder("k").build()
    }

    fn garbage() -> CounterSample {
        CounterSample {
            duration: Seconds(0.01),
            valu_busy_pct: f64::NAN,
            ..CounterSample::default()
        }
    }

    fn clean() -> CounterSample {
        CounterSample {
            duration: Seconds(0.01),
            valu_busy_pct: 60.0,
            valu_utilization_pct: 90.0,
            mem_unit_busy_pct: 30.0,
            ic_activity: 0.4,
            norm_vgpr: 0.4,
            norm_sgpr: 0.3,
            valu_insts: 1_000_000,
            dram_bytes: 1e7,
            achieved_bw_gbps: 80.0,
            occupancy_fraction: 0.8,
            l2_hit_rate: 0.5,
            ..CounterSample::default()
        }
    }

    #[test]
    fn watchdog_layer_engages_after_threshold_and_pins_safe_state() {
        let stats = PolicyStats::new();
        let mut g = WatchdogLayer::counters(WatchdogConfig::default())
            .with_stats(&stats)
            .layer(Box::new(BaselineGovernor::new()));
        let k = kernel();
        let boost = HwConfig::max_hd7970();
        for i in 0..3 {
            assert_eq!(g.decide(&k, i), boost);
            g.observe(&k, i, boost, &garbage());
        }
        assert_eq!(stats.fallback_engagements(), 1);
        assert_eq!(g.decide(&k, 3), crate::governor::safe_state());
        // base_hold = 4: the hold runs out after four engaged intervals.
        for i in 3..7 {
            let cfg = g.decide(&k, i);
            g.observe(&k, i, cfg, &clean());
        }
        assert_eq!(g.decide(&k, 7), boost, "released after the hold expires");
    }

    #[test]
    fn watchdog_layer_is_name_transparent() {
        let g = WatchdogLayer::counters(WatchdogConfig::default())
            .layer(Box::new(BaselineGovernor::new()));
        assert_eq!(g.name(), "baseline");
    }

    #[test]
    fn sanitize_layer_conditions_measurements() {
        let mut g = SanitizeLayer::new(SanitizerConfig::default())
            .layer(Box::new(BaselineGovernor::new()));
        let k = kernel();
        let cfg = HwConfig::max_hd7970();
        let (t, c) = g.condition(&k, 0, cfg, Seconds(0.01), clean());
        assert_eq!(t, Seconds(0.01));
        assert_eq!(c, clean());
        let (_, c) = g.condition(&k, 1, cfg, Seconds(0.01), garbage());
        assert!(c.valu_busy_pct.is_finite(), "NaN must not pass the layer");
    }

    #[test]
    fn sanitize_layer_reports_rejects_through_stats() {
        let stats = PolicyStats::new();
        let mut g = SanitizeLayer::new(SanitizerConfig::default())
            .with_stats(&stats)
            .layer(Box::new(BaselineGovernor::new()));
        let k = kernel();
        let cfg = HwConfig::max_hd7970();
        g.condition(&k, 0, cfg, Seconds(0.01), clean());
        assert_eq!(stats.sanitizer_rejects(), 0);
        g.condition(&k, 1, cfg, Seconds(0.01), garbage());
        assert!(stats.sanitizer_rejects() > 0);
    }

    #[test]
    fn ledger_records_latest_grant() {
        let ledger = DecisionLedger::new();
        assert_eq!(ledger.granted("k"), None);
        let boost = HwConfig::max_hd7970();
        ledger.grant("k", boost);
        assert_eq!(ledger.granted("k"), Some(boost));
        let safe = crate::governor::safe_state();
        ledger.grant("k", safe);
        assert_eq!(ledger.granted("k"), Some(safe));
    }
}
