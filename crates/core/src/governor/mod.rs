//! Power-management governors.
//!
//! Every governor implements [`Governor`]: before each kernel invocation the
//! runtime asks it to [`decide`](Governor::decide) the hardware
//! configuration, and afterwards lets it [`observe`](Governor::observe) the
//! performance counters — exactly the monitoring-at-kernel-boundaries
//! structure of Section 5.1.
//!
//! * [`BaselineGovernor`] — the stock PowerTune behaviour: with thermal
//!   headroom it always runs the boost configuration.
//! * [`HarmoniaGovernor`] — the paper's contribution: coarse-grain
//!   sensitivity-driven jumps plus fine-grain feedback tuning, with switches
//!   to run CG-only or restrict the managed tunables (the compute-DVFS-only
//!   ablation of Section 7.2).
//! * [`OracleGovernor`] — exhaustive per-kernel-per-iteration ED²
//!   minimization over all ~450 configurations ("impractical to implement",
//!   but the paper's upper bound).
//!
//! Cross-cutting concerns — safe-state watchdogs, the graceful-degradation
//! ladder ([`DegradeLayer`]), counter sanitization, trace taps — are *not*
//! baked into the governors. They are
//! [`GovernorLayer`] decorators composed into a stack, and named stacks
//! are built from one place by the [`PolicySpec`] registry.

mod baseline;
mod capped;
mod coarse;
mod fine;
#[allow(clippy::module_inception)]
mod harmonia;
mod ladder;
mod oracle;
mod powertune;
mod registry;
mod stack;
mod watchdog;

pub use baseline::BaselineGovernor;
pub use capped::CappedGovernor;
pub use coarse::{CoarseGrain, SensitivityBins};
pub use fine::{FgState, FineGrain};
pub use harmonia::{HarmoniaConfig, HarmoniaGovernor};
pub use ladder::{
    DegradeGovernor, DegradeLayer, Ladder, LadderConfig, LadderSignal, LadderTransition, Rung,
};
pub use oracle::{Ed2Objective, OracleGovernor, PowerAffine, PowerTable};
pub use powertune::PowerTuneGovernor;
pub use registry::{Policy, PolicyResources, PolicySpec, DEFAULT_CAP};
pub use stack::{
    AnomalyCheck, BoxGovernor, CapCheck, CounterCheck, DecisionLedger, GovernorLayer, PolicyStats,
    SanitizeLayer, TraceLayer, WatchdogLayer,
};
pub use watchdog::{safe_state, Watchdog, WatchdogConfig, WatchdogTransition};

use crate::telemetry::TraceHandle;
use harmonia_sim::{CounterSample, KernelProfile};
use harmonia_types::{HwConfig, Seconds};

/// A runtime power-management policy.
pub trait Governor {
    /// Human-readable policy name used in reports.
    fn name(&self) -> &str;

    /// Installs a telemetry handle so the governor can emit decision-trace
    /// events. The default is a no-op for policies that make no traceable
    /// decisions (the always-boost baseline). Decorators must forward the
    /// handle to their inner governor (a contract tested by
    /// `tests/governor_stack.rs`).
    fn set_trace(&mut self, _trace: TraceHandle) {}

    /// Chooses the hardware configuration for the upcoming invocation of
    /// `kernel` (application iteration `iteration`).
    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig;

    /// Conditions the raw measurement of the invocation that just ran,
    /// *before* the runtime accounts power/energy from it and before
    /// [`observe`](Governor::observe) sees it. The default is the identity:
    /// governors trust their inputs unless a [`SanitizeLayer`] is stacked
    /// on top, which overrides this to substitute implausible readings.
    fn condition(
        &mut self,
        _kernel: &KernelProfile,
        _iteration: u64,
        _cfg: HwConfig,
        time: Seconds,
        counters: CounterSample,
    ) -> (Seconds, CounterSample) {
        (time, counters)
    }

    /// Observes the counters produced by the invocation that just ran at
    /// `cfg`.
    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    );
}

/// Boxed governors govern: forwarding **every** method (including the
/// default-bodied ones) keeps layered stacks behaviourally identical to the
/// unboxed composition — a `Box<SanitizeGovernor>` whose `condition` fell
/// back to the identity default would silently disable sanitization.
impl<G: Governor + ?Sized> Governor for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        (**self).set_trace(trace);
    }

    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig {
        (**self).decide(kernel, iteration)
    }

    fn condition(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        time: Seconds,
        counters: CounterSample,
    ) -> (Seconds, CounterSample) {
        (**self).condition(kernel, iteration, cfg, time, counters)
    }

    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    ) {
        (**self).observe(kernel, iteration, cfg, counters);
    }
}
