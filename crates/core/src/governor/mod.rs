//! Power-management governors.
//!
//! Every governor implements [`Governor`]: before each kernel invocation the
//! runtime asks it to [`decide`](Governor::decide) the hardware
//! configuration, and afterwards lets it [`observe`](Governor::observe) the
//! performance counters — exactly the monitoring-at-kernel-boundaries
//! structure of Section 5.1.
//!
//! * [`BaselineGovernor`] — the stock PowerTune behaviour: with thermal
//!   headroom it always runs the boost configuration.
//! * [`HarmoniaGovernor`] — the paper's contribution: coarse-grain
//!   sensitivity-driven jumps plus fine-grain feedback tuning, with switches
//!   to run CG-only or restrict the managed tunables (the compute-DVFS-only
//!   ablation of Section 7.2).
//! * [`OracleGovernor`] — exhaustive per-kernel-per-iteration ED²
//!   minimization over all ~450 configurations ("impractical to implement",
//!   but the paper's upper bound).

mod baseline;
mod capped;
mod coarse;
mod fine;
#[allow(clippy::module_inception)]
mod harmonia;
mod oracle;
mod powertune;
mod watchdog;

pub use baseline::BaselineGovernor;
pub use capped::CappedGovernor;
pub use coarse::{CoarseGrain, SensitivityBins};
pub use fine::{FgState, FineGrain};
pub use harmonia::{HarmoniaConfig, HarmoniaGovernor};
pub use oracle::OracleGovernor;
pub use powertune::PowerTuneGovernor;
pub use watchdog::{safe_state, Watchdog, WatchdogConfig, WatchdogTransition};

use crate::telemetry::TraceHandle;
use harmonia_sim::{CounterSample, KernelProfile};
use harmonia_types::HwConfig;

/// A runtime power-management policy.
pub trait Governor {
    /// Human-readable policy name used in reports.
    fn name(&self) -> &str;

    /// Installs a telemetry handle so the governor can emit decision-trace
    /// events. The default is a no-op for policies that make no traceable
    /// decisions (the always-boost baseline). Decorators must forward the
    /// handle to their inner governor.
    fn set_trace(&mut self, _trace: TraceHandle) {}

    /// Chooses the hardware configuration for the upcoming invocation of
    /// `kernel` (application iteration `iteration`).
    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig;

    /// Observes the counters produced by the invocation that just ran at
    /// `cfg`.
    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    );
}
