//! A composable power-cap decorator for governors.
//!
//! The paper's motivation is a *fixed board/package power envelope*
//! (Section 1). [`CappedGovernor`] wraps any inner [`Governor`] and clamps
//! its decisions to a power budget: after the inner policy chooses a
//! configuration, the decorator projects its card power using the most
//! recently observed activity and, while over budget, steps down the
//! tunable that buys the most power per step. The inner policy still
//! receives the real counters, so Harmonia-under-a-cap keeps learning.

use crate::governor::watchdog::{Watchdog, WatchdogConfig, WatchdogTransition};
use crate::governor::Governor;
use crate::telemetry::{TraceEvent, TraceHandle};
use harmonia_power::{Activity, PowerModel};
use harmonia_sim::{CounterSample, KernelProfile};
use harmonia_types::{HwConfig, Tunable, Watts};
use std::collections::HashMap;

/// Wraps a governor and enforces a card-power budget on its decisions.
pub struct CappedGovernor<'a, G> {
    inner: G,
    power: &'a PowerModel,
    cap: Watts,
    name: String,
    /// Last observed activity per kernel, used to project power.
    activity: HashMap<String, Activity>,
    trace: TraceHandle,
    /// Safe-state fallback watchdog (opt-in hardening).
    watchdog: Option<Watchdog>,
    /// Last granted (post-clamp) decision per kernel, for the
    /// actuation-mismatch check.
    granted: HashMap<String, HwConfig>,
    /// Observed intervals whose projected card power exceeded the cap
    /// (with a 5% enforcement tolerance).
    cap_violations: u64,
    /// Cap violations observed while fallback was engaged.
    violations_while_fallback: u64,
}

impl<'a, G: Governor> CappedGovernor<'a, G> {
    /// Wraps `inner`, limiting projected card power to `cap`.
    pub fn new(inner: G, power: &'a PowerModel, cap: Watts) -> Self {
        let name = format!("{}@{:.0}W", inner.name(), cap.value());
        Self {
            inner,
            power,
            cap,
            name,
            activity: HashMap::new(),
            trace: TraceHandle::disabled(),
            watchdog: None,
            granted: HashMap::new(),
            cap_violations: 0,
            violations_while_fallback: 0,
        }
    }

    /// Arms the safe-state fallback watchdog: cap-violation streaks and
    /// granted-vs-ran actuation mismatches count as anomalous intervals;
    /// after the threshold, decisions pin to the (still cap-clamped) safe
    /// state with exponential-backoff re-engagement.
    pub fn with_watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = Some(Watchdog::new(config));
        self
    }

    /// The wrapped governor.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// The fallback watchdog, when armed.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    /// Whether fallback is currently engaged.
    pub fn fallback_engaged(&self) -> bool {
        self.watchdog.as_ref().is_some_and(Watchdog::engaged)
    }

    /// Observed intervals whose projected card power exceeded the cap
    /// (5% enforcement tolerance), fallback engaged or not.
    pub fn cap_violations(&self) -> u64 {
        self.cap_violations
    }

    /// Cap violations observed while fallback was engaged.
    pub fn violations_while_fallback(&self) -> u64 {
        self.violations_while_fallback
    }

    /// Clamps `cfg` under the cap for the given activity estimate.
    fn clamp(&self, cfg: HwConfig, activity: &Activity) -> HwConfig {
        let mut cfg = cfg;
        // Bounded by the total grid depth; each iteration removes one step.
        for _ in 0..32 {
            if self.power.card_pwr(cfg, activity) <= self.cap {
                break;
            }
            // Greedy: take the single downward step that saves the most
            // projected power.
            let mut best: Option<(HwConfig, f64)> = None;
            for t in Tunable::ALL {
                if let Some(down) = cfg.step_down(t) {
                    let p = self.power.card_pwr(down, activity).value();
                    if best.as_ref().is_none_or(|(_, bp)| p < *bp) {
                        best = Some((down, p));
                    }
                }
            }
            match best {
                Some((next, _)) => cfg = next,
                None => break, // grid floor: nothing left to shed
            }
        }
        cfg
    }
}

impl<G: Governor> Governor for CappedGovernor<'_, G> {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace.clone();
        self.inner.set_trace(trace);
    }

    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig {
        let want = match &self.watchdog {
            // While fallback is engaged the inner policy is bypassed
            // entirely; the safe state still goes through the cap clamp.
            Some(wd) if wd.engaged() => wd.safe(),
            _ => self.inner.decide(kernel, iteration),
        };
        // Without an observation yet, assume a fully busy card — the
        // conservative projection for cap enforcement.
        let activity = self
            .activity
            .get(&kernel.name)
            .copied()
            .unwrap_or_else(|| Activity::streaming(1.0, 1.0));
        let granted = self.clamp(want, &activity);
        if granted != want {
            self.trace.emit(|| TraceEvent::CapClamp {
                kernel: kernel.name.clone(),
                iteration,
                wanted: want.into(),
                granted: granted.into(),
            });
        }
        if self.watchdog.is_some() {
            self.granted.insert(kernel.name.clone(), granted);
        }
        granted
    }

    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    ) {
        let activity = Activity {
            valu_activity: counters.valu_activity(),
            dram_bytes_per_sec: counters.dram_bytes_per_sec(),
            dram_traffic_fraction: counters.ic_activity,
        };
        // NaN projections (glitched telemetry) fail the comparison and are
        // not counted — the inner watchdog catches implausible counters.
        let over = self.power.card_pwr(cfg, &activity).value() > self.cap.value() * 1.05;
        if over {
            self.cap_violations += 1;
            if self.fallback_engaged() {
                self.violations_while_fallback += 1;
            }
        }
        if let Some(wd) = self.watchdog.as_mut() {
            let engaged_before = wd.engaged();
            let what: Option<&'static str> = if over {
                Some("cap violation")
            } else if wd.config().check_actuation
                && !engaged_before
                && self.granted.get(&kernel.name).is_some_and(|g| *g != cfg)
            {
                Some("actuation mismatch")
            } else {
                None
            };
            if let Some(what) = what {
                self.trace.emit(|| TraceEvent::FaultDetected {
                    kernel: kernel.name.clone(),
                    iteration,
                    what: what.to_string(),
                });
            }
            match wd.tick(what.is_some()) {
                WatchdogTransition::Engaged => {
                    let safe = wd.safe();
                    let hold = wd.hold();
                    self.trace.emit(|| TraceEvent::FallbackEngaged {
                        kernel: kernel.name.clone(),
                        iteration,
                        safe: safe.into(),
                        hold,
                    });
                }
                WatchdogTransition::Released => {
                    self.trace.emit(|| TraceEvent::FallbackReleased {
                        kernel: kernel.name.clone(),
                        iteration,
                    });
                }
                WatchdogTransition::None => {}
            }
        }
        self.activity.insert(kernel.name.clone(), activity);
        self.inner.observe(kernel, iteration, cfg, counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::BaselineGovernor;
    use crate::predictor::SensitivityPredictor;
    use harmonia_sim::{IntervalModel, TimingModel};
    use harmonia_workloads::suite;

    #[test]
    fn name_mentions_cap() {
        let power = PowerModel::hd7970();
        let g = CappedGovernor::new(BaselineGovernor::new(), &power, Watts(185.0));
        assert_eq!(g.name(), "baseline@185W");
        assert_eq!(g.inner().name(), "baseline");
    }

    #[test]
    fn generous_cap_never_interferes() {
        let power = PowerModel::hd7970();
        let model = IntervalModel::default();
        let k = suite::stencil().kernels[0].clone();
        let mut g = CappedGovernor::new(BaselineGovernor::new(), &power, Watts(500.0));
        for i in 0..4 {
            let cfg = g.decide(&k, i);
            assert_eq!(cfg, HwConfig::max_hd7970());
            let c = model.simulate(cfg, &k, i);
            g.observe(&k, i, cfg, &c.counters);
        }
    }

    #[test]
    fn tight_cap_is_enforced_every_decision() {
        let power = PowerModel::hd7970();
        let model = IntervalModel::default();
        let k = suite::maxflops().kernels[0].clone();
        let cap = Watts(170.0);
        let mut g = CappedGovernor::new(BaselineGovernor::new(), &power, cap);
        for i in 0..6 {
            let cfg = g.decide(&k, i);
            let c = model.simulate(cfg, &k, i);
            let activity = Activity {
                valu_activity: c.counters.valu_activity(),
                dram_bytes_per_sec: c.counters.dram_bytes_per_sec(),
                dram_traffic_fraction: c.counters.ic_activity,
            };
            // Enforced against the projected activity (after warm-up the
            // projection is the real activity of the previous invocation).
            if i > 0 {
                assert!(
                    power.card_pwr(cfg, &activity) <= cap + Watts(10.0),
                    "iteration {i} exceeded the cap"
                );
            }
            g.observe(&k, i, cfg, &c.counters);
        }
    }

    #[test]
    fn capped_harmonia_beats_capped_baseline_perf() {
        // Under the same envelope, the coordinated policy should find a
        // faster operating point than boost-then-clamp.
        let power = PowerModel::hd7970();
        let model = IntervalModel::default();
        let rt = crate::runtime::Runtime::new(&model, &power).without_trace();
        let app = suite::maxflops();
        let cap = Watts(185.0);
        let base = rt.run(
            &app,
            &mut CappedGovernor::new(BaselineGovernor::new(), &power, cap),
        );
        let hm = rt.run(
            &app,
            &mut CappedGovernor::new(
                crate::governor::HarmoniaGovernor::new(SensitivityPredictor::paper_table3()),
                &power,
                cap,
            ),
        );
        assert!(
            hm.total_time <= base.total_time,
            "capped Harmonia {} vs capped baseline {}",
            hm.total_time,
            base.total_time
        );
    }
}
