//! A composable power-cap decorator for governors.
//!
//! The paper's motivation is a *fixed board/package power envelope*
//! (Section 1). [`CappedGovernor`] wraps any inner [`Governor`] and clamps
//! its decisions to a power budget: after the inner policy chooses a
//! configuration, the decorator projects its card power using the most
//! recently observed activity and, while over budget, steps down the
//! tunable that buys the most power per step. The inner policy still
//! receives the real counters, so Harmonia-under-a-cap keeps learning.
//!
//! Safe-state fallback is not built in: stack a
//! [`WatchdogLayer`](crate::governor::WatchdogLayer) *inside* this
//! decorator (the registry's `hardened:capped` spec does) and hand its
//! [`DecisionLedger`] to [`CappedGovernor::with_ledger`] so the watchdog's
//! actuation check compares against the post-clamp grant.

use crate::governor::stack::{DecisionLedger, PolicyStats};
use crate::governor::Governor;
use crate::telemetry::{TraceEvent, TraceHandle};
use harmonia_power::{Activity, PowerModel};
use harmonia_sim::{CounterSample, KernelProfile};
use harmonia_types::{HwConfig, Seconds, Tunable, Watts};
use std::collections::HashMap;

/// Wraps a governor and enforces a card-power budget on its decisions.
pub struct CappedGovernor<'a, G> {
    inner: G,
    power: &'a PowerModel,
    cap: Watts,
    name: String,
    /// Last observed activity per kernel, used to project power.
    activity: HashMap<String, Activity>,
    trace: TraceHandle,
    /// Shared grant ledger, when an inner watchdog layer needs to see the
    /// post-clamp decision.
    ledger: Option<DecisionLedger>,
    /// Cap-violation accounting (shared with the stack's stats handle when
    /// registry-built).
    stats: PolicyStats,
    /// Sanitizer reject total at the previous observation (shared stats) —
    /// a rising count means current telemetry is being substituted.
    last_rejects: u64,
}

impl<'a, G: Governor> CappedGovernor<'a, G> {
    /// Wraps `inner`, limiting projected card power to `cap`.
    pub fn new(inner: G, power: &'a PowerModel, cap: Watts) -> Self {
        let name = format!("{}@{:.0}W", inner.name(), cap.value());
        Self {
            inner,
            power,
            cap,
            name,
            activity: HashMap::new(),
            trace: TraceHandle::disabled(),
            ledger: None,
            stats: PolicyStats::new(),
            last_rejects: 0,
        }
    }

    /// Records every post-clamp grant into `ledger`. Because this decorator
    /// decides last, its write overwrites any pre-clamp entry an inner
    /// watchdog layer made — actuation checks then compare against what
    /// was actually granted.
    pub fn with_ledger(mut self, ledger: DecisionLedger) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Shares `stats` so cap violations are counted into an external handle
    /// (registry-built stacks report through
    /// [`Policy::stats`](crate::governor::Policy)).
    pub fn with_stats(mut self, stats: &PolicyStats) -> Self {
        self.stats = stats.clone();
        self
    }

    /// The wrapped governor.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// The budget currently enforced.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Re-targets the budget without rebuilding the stack. Subsequent
    /// decisions clamp against the new cap and the reported name follows
    /// it; learned activity, the ledger, and the violation accounting are
    /// preserved. This is the fleet re-balance hook: a cluster governor
    /// re-partitions a global envelope across devices every tick, and each
    /// device's decorator picks up its new share here.
    pub fn set_cap(&mut self, cap: Watts) {
        self.cap = cap;
        self.name = format!("{}@{:.0}W", self.inner.name(), cap.value());
    }

    /// Observed intervals whose projected card power exceeded the cap
    /// (5% enforcement tolerance).
    pub fn cap_violations(&self) -> u64 {
        self.stats.cap_violations()
    }

    /// Clamps `cfg` under the cap for the given activity estimate. Steps
    /// run along the power model's device grid, so the decorator clamps
    /// catalog devices on their own lattices.
    fn clamp(&self, cfg: HwConfig, activity: &Activity) -> HwConfig {
        let grid = self.power.grid();
        let mut cfg = cfg;
        // Bounded by the total grid depth; each iteration removes one step.
        for _ in 0..grid.descent_bound() {
            if self.power.card_pwr(cfg, activity) <= self.cap {
                break;
            }
            // Greedy: take the single downward step that saves the most
            // projected power.
            let mut best: Option<(HwConfig, f64)> = None;
            for t in Tunable::ALL {
                if let Some(down) = cfg.step_down_on(grid, t) {
                    let p = self.power.card_pwr(down, activity).value();
                    if best.as_ref().is_none_or(|(_, bp)| p < *bp) {
                        best = Some((down, p));
                    }
                }
            }
            match best {
                Some((next, _)) => cfg = next,
                None => break, // grid floor: nothing left to shed
            }
        }
        cfg
    }
}

impl<G: Governor> Governor for CappedGovernor<'_, G> {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace.clone();
        self.inner.set_trace(trace);
    }

    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig {
        let want = self.inner.decide(kernel, iteration);
        // Without an observation yet, assume a fully busy card — the
        // conservative projection for cap enforcement.
        let activity = self
            .activity
            .get(&kernel.name)
            .copied()
            .unwrap_or_else(|| Activity::streaming(1.0, 1.0));
        let granted = self.clamp(want, &activity);
        if granted != want {
            self.trace.emit(|| TraceEvent::CapClamp {
                kernel: kernel.name.clone(),
                iteration,
                wanted: want.into(),
                granted: granted.into(),
            });
        }
        if let Some(ledger) = &self.ledger {
            ledger.grant(&kernel.name, granted);
        }
        granted
    }

    fn condition(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        time: Seconds,
        counters: CounterSample,
    ) -> (Seconds, CounterSample) {
        self.inner.condition(kernel, iteration, cfg, time, counters)
    }

    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    ) {
        let activity = Activity {
            valu_activity: counters.valu_activity(),
            dram_bytes_per_sec: counters.dram_bytes_per_sec(),
            dram_traffic_fraction: counters.ic_activity,
        };
        // An interval under sanitizer pressure (rejects were recorded since
        // the last observation) did not produce a usable measurement: the
        // sample in hand is a substituted stand-in recorded at an *earlier*
        // operating point. Projecting stand-in activity at this interval's
        // configuration manufactures phantom violations (and can equally
        // hide real ones), so the accounting only trusts quiet intervals.
        let rejects = self.stats.sanitizer_rejects();
        let pressure = rejects > self.last_rejects;
        self.last_rejects = rejects;
        // NaN projections (glitched telemetry) fail the comparison and are
        // not counted — a stacked counter watchdog catches implausible
        // samples, and a stacked sanitizer rejects physically impossible
        // ones before they reach this accounting.
        let over = self.power.card_pwr(cfg, &activity).value() > self.cap.value() * 1.05;
        if over && !pressure {
            self.stats.count_cap_violation();
        }
        // A dead read (timer ran, every dynamic counter zero) is a failed
        // measurement, not an idle kernel: learning "zero activity" from it
        // would un-clamp the next grant to full boost and break the cap for
        // real. Likewise a substituted sample: it describes another
        // interval's activity. Only samples from quiet intervals may teach
        // the clamp.
        if !pressure && !crate::sanitize::dead_sample(counters) {
            self.activity.insert(kernel.name.clone(), activity);
        }
        self.inner.observe(kernel, iteration, cfg, counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::BaselineGovernor;
    use crate::predictor::SensitivityPredictor;
    use harmonia_sim::{IntervalModel, TimingModel};
    use harmonia_workloads::suite;

    #[test]
    fn name_mentions_cap() {
        let power = PowerModel::hd7970();
        let g = CappedGovernor::new(BaselineGovernor::new(), &power, Watts(185.0));
        assert_eq!(g.name(), "baseline@185W");
        assert_eq!(g.inner().name(), "baseline");
    }

    #[test]
    fn generous_cap_never_interferes() {
        let power = PowerModel::hd7970();
        let model = IntervalModel::default();
        let k = suite::stencil().kernels[0].clone();
        let mut g = CappedGovernor::new(BaselineGovernor::new(), &power, Watts(500.0));
        for i in 0..4 {
            let cfg = g.decide(&k, i);
            assert_eq!(cfg, HwConfig::max_hd7970());
            let c = model.simulate(cfg, &k, i);
            g.observe(&k, i, cfg, &c.counters);
        }
    }

    #[test]
    fn tight_cap_is_enforced_every_decision() {
        let power = PowerModel::hd7970();
        let model = IntervalModel::default();
        let k = suite::maxflops().kernels[0].clone();
        let cap = Watts(170.0);
        let mut g = CappedGovernor::new(BaselineGovernor::new(), &power, cap);
        for i in 0..6 {
            let cfg = g.decide(&k, i);
            let c = model.simulate(cfg, &k, i);
            let activity = Activity {
                valu_activity: c.counters.valu_activity(),
                dram_bytes_per_sec: c.counters.dram_bytes_per_sec(),
                dram_traffic_fraction: c.counters.ic_activity,
            };
            // Enforced against the projected activity (after warm-up the
            // projection is the real activity of the previous invocation).
            if i > 0 {
                assert!(
                    power.card_pwr(cfg, &activity) <= cap + Watts(10.0),
                    "iteration {i} exceeded the cap"
                );
            }
            g.observe(&k, i, cfg, &c.counters);
        }
    }

    #[test]
    fn capped_harmonia_beats_capped_baseline_perf() {
        // Under the same envelope, the coordinated policy should find a
        // faster operating point than boost-then-clamp.
        let power = PowerModel::hd7970();
        let model = IntervalModel::default();
        let rt = crate::runtime::Runtime::new(&model, &power).without_trace();
        let app = suite::maxflops();
        let cap = Watts(185.0);
        let base = rt.run(
            &app,
            &mut CappedGovernor::new(BaselineGovernor::new(), &power, cap),
        );
        let hm = rt.run(
            &app,
            &mut CappedGovernor::new(
                crate::governor::HarmoniaGovernor::new(SensitivityPredictor::paper_table3()),
                &power,
                cap,
            ),
        );
        assert!(
            hm.total_time <= base.total_time,
            "capped Harmonia {} vs capped baseline {}",
            hm.total_time,
            base.total_time
        );
    }

    #[test]
    fn set_cap_retargets_the_clamp_and_the_name() {
        let power = PowerModel::hd7970();
        let k = suite::maxflops().kernels[0].clone();
        let mut g = CappedGovernor::new(BaselineGovernor::new(), &power, Watts(500.0));
        assert_eq!(g.cap(), Watts(500.0));
        // Generous budget: the clamp never engages.
        assert_eq!(g.decide(&k, 0), HwConfig::max_hd7970());
        // Tighten mid-session: the very next decision is clamped and the
        // reported name follows the new budget.
        g.set_cap(Watts(150.0));
        assert_eq!(g.cap(), Watts(150.0));
        assert_eq!(g.name(), "baseline@150W");
        assert_ne!(g.decide(&k, 1), HwConfig::max_hd7970());
    }

    #[test]
    fn post_clamp_grant_lands_in_the_ledger() {
        let power = PowerModel::hd7970();
        let ledger = DecisionLedger::new();
        let k = suite::maxflops().kernels[0].clone();
        // A cap this tight forces a clamp below boost on the conservative
        // warm-up projection.
        let mut g = CappedGovernor::new(BaselineGovernor::new(), &power, Watts(150.0))
            .with_ledger(ledger.clone());
        let granted = g.decide(&k, 0);
        assert_ne!(granted, HwConfig::max_hd7970());
        assert_eq!(ledger.granted(&k.name), Some(granted));
    }
}
