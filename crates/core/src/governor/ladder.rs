//! Graceful-degradation ladder: stepwise fallback instead of the
//! watchdog's all-or-nothing park.
//!
//! The [`WatchdogLayer`](super::WatchdogLayer) answers every anomaly
//! streak the same way: pin the safe state and bypass the whole policy.
//! That throws away the CG/FG machinery even when a *partial* failure —
//! a flaky fine-grain probe, a stuck counter the sanitizer is already
//! holding — could be ridden out at reduced capability. [`DegradeLayer`]
//! replaces the binary park with a [`Ladder`] of named [`Rung`]s:
//!
//! ```text
//!   Full (CG + FG)  ──demote──▶  CG-only  ──▶  freq-only  ──▶  safe-state
//!        ◀──promote (hysteresis: `hold` consecutive clean intervals)──
//! ```
//!
//! Each demotion steps one rung down after `demote_threshold` consecutive
//! anomalous intervals (the terminal step into the safe state demands the
//! longer `safe_demote_threshold` streak) and *doubles* the promotion hold
//! (exponential backoff, capped at `max_hold`), so a flapping fault
//! settles onto a low rung instead of oscillating. Promotion climbs one rung at a time and
//! requires `hold` consecutive clean intervals per step; a long clean
//! streak at the top rung resets the backoff. Anomalies are judged by the
//! same [`CounterCheck`] the watchdog uses, widened with sanitizer-reject
//! pressure (new rejects recorded into the shared [`PolicyStats`] since
//! the previous interval count as anomalous — the sanitizer's escalation
//! path lands here). The two sources carry different weight
//! ([`LadderSignal`]): a check verdict is *harmful* and can demote any
//! rung, while sanitizer pressure alone is only *suspect* — it demotes
//! the capability rungs (whose learning loops would otherwise ingest
//! substituted samples) but holds at [`Rung::FreqOnly`] rather than
//! taking the terminal park, because a fault the sanitizer is already
//! containing is no reason to surrender the last knob.
//!
//! Rung residency, demotions, and promotions are exported through
//! [`PolicyStats`]; every shift emits [`TraceEvent::RungShift`], and the
//! safe-state boundary additionally emits the watchdog's
//! `FallbackEngaged`/`FallbackReleased` pair so existing safe-residency
//! accounting (chaos tables, trace summaries) reads the ladder's bottom
//! rung exactly like a parked watchdog.

use crate::governor::stack::{
    AnomalyCheck, BoxGovernor, CounterCheck, DecisionLedger, GovernorLayer, PolicyStats,
};
use crate::governor::watchdog::{safe_state, WatchdogConfig};
use crate::governor::Governor;
use crate::telemetry::{TraceEvent, TraceHandle};
use harmonia_sim::{CounterSample, KernelProfile};
use harmonia_types::{HwConfig, Seconds};

/// A named capability level of the degradation ladder, ordered from full
/// capability (index 0) to the pinned safe state (index 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rung {
    /// Full Harmonia: coarse-grain + fine-grain tuning.
    Full,
    /// Coarse-grain tuning only; the (probe-heavy) FG loop is disabled.
    CgOnly,
    /// Compute-DVFS-only: CU frequency is the single remaining knob.
    FreqOnly,
    /// Pinned safe state (32 CU @ 500 MHz, memory untouched).
    SafeState,
}

impl Rung {
    /// All rungs, top to bottom.
    pub const ALL: [Rung; 4] = [Rung::Full, Rung::CgOnly, Rung::FreqOnly, Rung::SafeState];

    /// Stable index into per-rung arrays ([`PolicyStats::rung_residency`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable rung name (trace events, reports).
    pub fn label(self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::CgOnly => "cg-only",
            Rung::FreqOnly => "freq-only",
            Rung::SafeState => "safe-state",
        }
    }

    /// One rung down (toward the safe state); `None` at the bottom.
    pub fn down(self) -> Option<Rung> {
        match self {
            Rung::Full => Some(Rung::CgOnly),
            Rung::CgOnly => Some(Rung::FreqOnly),
            Rung::FreqOnly => Some(Rung::SafeState),
            Rung::SafeState => None,
        }
    }

    /// One rung up (toward full capability); `None` at the top.
    pub fn up(self) -> Option<Rung> {
        match self {
            Rung::Full => None,
            Rung::CgOnly => Some(Rung::Full),
            Rung::FreqOnly => Some(Rung::CgOnly),
            Rung::SafeState => Some(Rung::FreqOnly),
        }
    }
}

/// Tuning for the [`Ladder`] state machine. Defaults mirror
/// [`WatchdogConfig`](super::WatchdogConfig) so a ladder demotes exactly
/// when the parked watchdog would have engaged.
#[derive(Debug, Clone, Copy)]
pub struct LadderConfig {
    /// Consecutive anomalous intervals before demoting one rung.
    pub demote_threshold: u32,
    /// Consecutive anomalous intervals before the *terminal* demotion
    /// ([`Rung::FreqOnly`] → [`Rung::SafeState`]). The park discards all
    /// remaining control authority, so it demands a longer streak than the
    /// intermediate steps — this is what keeps the ladder's safe-state
    /// residency strictly below a binary watchdog's under faults the
    /// degraded rungs can ride out.
    pub safe_demote_threshold: u32,
    /// Clean intervals required for the first promotion (doubles per
    /// demotion — exponential backoff).
    pub base_hold: u64,
    /// Backoff ceiling for the promotion hold.
    pub max_hold: u64,
    /// Consecutive clean intervals at [`Rung::Full`] that reset the
    /// backoff to `base_hold`.
    pub clean_reset: u64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self {
            demote_threshold: 3,
            safe_demote_threshold: 6,
            base_hold: 4,
            max_hold: 64,
            clean_reset: 16,
        }
    }
}

/// How bad one observation interval looked, from the ladder's point of
/// view.
///
/// The split matters at the terminal rung: a [`Suspect`](LadderSignal)
/// interval (the sanitizer substituted a lying sample, but the substitute
/// is plausible and the decision loop is still functioning) holds
/// [`Rung::FreqOnly`] in place — it earns no promotion credit, but it is
/// not evidence that the last remaining knob must be discarded. Only
/// [`Harmful`](LadderSignal) intervals (implausible counters, actuation
/// mismatch, performance collapse) grow the terminal-demotion streak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderSignal {
    /// Interval looked healthy.
    Clean,
    /// Telemetry was untrustworthy but already contained (sanitizer
    /// substitution); degraded rungs may still be demoted, the terminal
    /// park may not.
    Suspect,
    /// The current rung demonstrably failed to contain the fault.
    Harmful,
}

/// What one [`Ladder::tick`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderTransition {
    /// No rung change this interval.
    None,
    /// Stepped one rung down; `hold` clean intervals are now required
    /// before the first promotion back up.
    Demoted { from: Rung, to: Rung, hold: u64 },
    /// Stepped one rung up after the hold was served cleanly.
    Promoted { from: Rung, to: Rung },
}

/// The ladder state machine: anomaly streaks demote, clean streaks
/// promote, with hysteresis (promotion hold) and exponential backoff
/// (hold doubles per demotion). Pure state — the [`DegradeGovernor`]
/// wires it to checks, governors, and telemetry.
#[derive(Debug)]
pub struct Ladder {
    config: LadderConfig,
    rung: Rung,
    /// Consecutive anomalous intervals at the current rung.
    streak: u32,
    /// Consecutive clean intervals at the current rung.
    clean: u64,
    /// Next demotion's promotion hold (doubles per demotion).
    hold: u64,
    /// Clean intervals required per promotion step, fixed at demotion
    /// time. A square-wave fault whose clean half-period is shorter than
    /// this can never promote — the non-oscillation property.
    required: u64,
    demotions: u64,
    promotions: u64,
}

impl Ladder {
    /// A ladder at [`Rung::Full`] with fresh backoff.
    pub fn new(config: LadderConfig) -> Self {
        let hold = config.base_hold.max(1);
        Self {
            config,
            rung: Rung::Full,
            streak: 0,
            clean: 0,
            hold,
            required: hold,
            demotions: 0,
            promotions: 0,
        }
    }

    /// The current rung.
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// The tuning in effect.
    pub fn config(&self) -> &LadderConfig {
        &self.config
    }

    /// Clean intervals currently required per promotion step.
    ///
    /// Reads `required`, not the `hold` field: `hold` is the *next*
    /// backoff value, fixed into `required` at demotion time.
    #[allow(clippy::misnamed_getters)]
    pub fn hold(&self) -> u64 {
        self.required
    }

    /// Total demotions so far.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Total promotions so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Advances one observation interval with the full three-valued
    /// signal. [`LadderSignal::Suspect`] behaves like
    /// [`LadderSignal::Harmful`] on every rung except [`Rung::FreqOnly`],
    /// where it freezes the ladder: the clean streak resets (no promotion
    /// on lying telemetry) but the demotion streak does not grow (no
    /// parking on contained noise).
    pub fn signal(&mut self, signal: LadderSignal) -> LadderTransition {
        match signal {
            LadderSignal::Clean => self.tick(false),
            LadderSignal::Harmful => self.tick(true),
            LadderSignal::Suspect => {
                if self.rung == Rung::FreqOnly {
                    self.clean = 0;
                    LadderTransition::None
                } else {
                    self.tick(true)
                }
            }
        }
    }

    /// Advances one observation interval with the binary signal
    /// (`anomalous` maps to [`LadderSignal::Harmful`]).
    pub fn tick(&mut self, anomalous: bool) -> LadderTransition {
        if anomalous {
            self.clean = 0;
            self.streak += 1;
            let threshold = if self.rung == Rung::FreqOnly {
                self.config.safe_demote_threshold.max(1)
            } else {
                self.config.demote_threshold.max(1)
            };
            if self.streak >= threshold {
                self.streak = 0;
                if let Some(to) = self.rung.down() {
                    let from = self.rung;
                    self.rung = to;
                    self.required = self.hold;
                    self.hold = (self.hold.saturating_mul(2)).min(self.config.max_hold.max(1));
                    self.demotions += 1;
                    return LadderTransition::Demoted {
                        from,
                        to,
                        hold: self.required,
                    };
                }
            }
            return LadderTransition::None;
        }
        self.streak = 0;
        self.clean = self.clean.saturating_add(1);
        if self.rung == Rung::Full {
            if self.clean >= self.config.clean_reset {
                self.hold = self.config.base_hold.max(1);
            }
            return LadderTransition::None;
        }
        if self.clean >= self.required {
            let from = self.rung;
            let to = from.up().expect("below Full");
            self.rung = to;
            self.clean = 0;
            self.promotions += 1;
            return LadderTransition::Promoted { from, to };
        }
        LadderTransition::None
    }
}

/// Blueprint for the graceful-degradation decorator. [`layer`] wraps the
/// inner governor as the [`Rung::Full`] policy; the CG-only and
/// frequency-only alternates are supplied up front (the registry builds
/// them from the same predictor).
///
/// [`layer`]: GovernorLayer::layer
pub struct DegradeLayer<'a> {
    config: LadderConfig,
    wd_config: WatchdogConfig,
    cg: BoxGovernor<'a>,
    freq: BoxGovernor<'a>,
    safe: HwConfig,
    ledger: DecisionLedger,
    stats: PolicyStats,
}

impl<'a> DegradeLayer<'a> {
    /// A ladder stepping down from the (future) inner governor through
    /// `cg` and `freq` to the standard safe state.
    pub fn new(config: LadderConfig, cg: BoxGovernor<'a>, freq: BoxGovernor<'a>) -> Self {
        Self {
            config,
            wd_config: WatchdogConfig {
                check_actuation: true,
                ..WatchdogConfig::default()
            },
            cg,
            freq,
            safe: safe_state(),
            ledger: DecisionLedger::new(),
            stats: PolicyStats::new(),
        }
    }

    /// Overrides the anomaly-check tuning (collapse ratio, actuation
    /// check) — the ladder checks actuation by default.
    pub fn with_check_config(mut self, wd_config: WatchdogConfig) -> Self {
        self.wd_config = wd_config;
        self
    }

    /// Overrides the terminal rung's pinned configuration (e.g. a catalog
    /// device's [`DeviceSpec::safe_state`](harmonia_types::DeviceSpec::safe_state)
    /// instead of the HD7970 default).
    pub fn with_safe_state(mut self, safe: HwConfig) -> Self {
        self.safe = safe;
        self
    }

    /// Shares `stats` so rung residency/demotions/promotions and fallback
    /// engagements are counted into an external handle.
    pub fn with_stats(mut self, stats: &PolicyStats) -> Self {
        self.stats = stats.clone();
        self
    }

    /// The ledger this layer's decisions are recorded in; hand it to an
    /// outer [`CappedGovernor`](super::CappedGovernor) so the post-clamp
    /// grant is what the actuation check compares against.
    pub fn ledger(&self) -> DecisionLedger {
        self.ledger.clone()
    }
}

impl<'a> GovernorLayer<'a> for DegradeLayer<'a> {
    fn layer(self, inner: BoxGovernor<'a>) -> BoxGovernor<'a> {
        Box::new(DegradeGovernor {
            full: inner,
            cg: self.cg,
            freq: self.freq,
            safe: self.safe,
            ladder: Ladder::new(self.config),
            check: CounterCheck::new(),
            wd_config: self.wd_config,
            ledger: self.ledger,
            stats: self.stats,
            last_rejects: 0,
            trace: TraceHandle::disabled(),
        })
    }
}

/// The decorator produced by [`DegradeLayer`]: routes decisions to the
/// active rung's governor and walks the [`Ladder`] on every observation.
pub struct DegradeGovernor<'a> {
    full: BoxGovernor<'a>,
    cg: BoxGovernor<'a>,
    freq: BoxGovernor<'a>,
    safe: HwConfig,
    ladder: Ladder,
    check: CounterCheck,
    wd_config: WatchdogConfig,
    ledger: DecisionLedger,
    stats: PolicyStats,
    /// Sanitizer reject total at the previous observation, for the
    /// new-rejects-this-interval pressure signal.
    last_rejects: u64,
    trace: TraceHandle,
}

impl DegradeGovernor<'_> {
    /// The governor owning the given rung, or `None` at the safe state.
    fn rung_governor(&mut self, rung: Rung) -> Option<&mut dyn Governor> {
        match rung {
            Rung::Full => Some(&mut self.full),
            Rung::CgOnly => Some(&mut self.cg),
            Rung::FreqOnly => Some(&mut self.freq),
            Rung::SafeState => None,
        }
    }

    /// The current rung (tests, reports).
    pub fn rung(&self) -> Rung {
        self.ladder.rung()
    }
}

impl Governor for DegradeGovernor<'_> {
    fn name(&self) -> &str {
        // Name-transparent to the Full-rung policy, like every other
        // layer: reports keep the inner governor's identity.
        self.full.name()
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace.clone();
        self.full.set_trace(trace.clone());
        self.cg.set_trace(trace.clone());
        self.freq.set_trace(trace);
    }

    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig {
        let safe = self.safe;
        let cfg = match self.rung_governor(self.ladder.rung()) {
            Some(g) => g.decide(kernel, iteration),
            None => safe,
        };
        self.ledger.grant(&kernel.name, cfg);
        cfg
    }

    fn condition(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        time: Seconds,
        counters: CounterSample,
    ) -> (Seconds, CounterSample) {
        match self.rung_governor(self.ladder.rung()) {
            Some(g) => g.condition(kernel, iteration, cfg, time, counters),
            None => (time, counters),
        }
    }

    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    ) {
        let rung_before = self.ladder.rung();
        self.stats.count_rung_residency(rung_before.index());
        let engaged_before = rung_before == Rung::SafeState;
        let granted = self.ledger.granted(&kernel.name);
        let verdict = self.check.verdict(
            kernel,
            cfg,
            counters,
            &self.wd_config,
            granted,
            engaged_before,
        );
        // Sanitizer pressure: rejects recorded into the shared stats since
        // the last interval mean the conditioned sample we just saw was
        // (partly) substituted — the counters are lying even though the
        // substitute passes plausibility. That is *suspect* (the
        // substitution contained the damage), not *harmful*: it demotes the
        // capability rungs whose learning loops would ingest the
        // substitutes, but it can never justify the terminal park.
        let rejects = self.stats.sanitizer_rejects();
        let pressure = verdict.is_none() && rejects > self.last_rejects;
        self.last_rejects = rejects;
        let what = verdict.or(pressure.then_some("sanitizer pressure"));
        if let Some(what) = what {
            self.trace.emit(|| TraceEvent::FaultDetected {
                kernel: kernel.name.clone(),
                iteration,
                what: what.to_string(),
            });
        }
        let signal = if verdict.is_some() {
            LadderSignal::Harmful
        } else if pressure {
            LadderSignal::Suspect
        } else {
            LadderSignal::Clean
        };
        match self.ladder.signal(signal) {
            LadderTransition::Demoted { from, to, hold } => {
                self.stats.count_rung_demotion();
                self.trace.emit(|| TraceEvent::RungShift {
                    kernel: kernel.name.clone(),
                    iteration,
                    from: from.label().to_string(),
                    to: to.label().to_string(),
                    hold,
                });
                if to == Rung::SafeState {
                    // The bottom rung is the watchdog's park: reuse its
                    // event pair so safe-residency accounting is uniform.
                    self.stats.count_fallback_engagement();
                    let safe = self.safe;
                    self.trace.emit(|| TraceEvent::FallbackEngaged {
                        kernel: kernel.name.clone(),
                        iteration,
                        safe: safe.into(),
                        hold,
                    });
                }
            }
            LadderTransition::Promoted { from, to } => {
                self.stats.count_rung_promotion();
                self.trace.emit(|| TraceEvent::RungShift {
                    kernel: kernel.name.clone(),
                    iteration,
                    from: from.label().to_string(),
                    to: to.label().to_string(),
                    hold: 0,
                });
                if from == Rung::SafeState {
                    self.trace.emit(|| TraceEvent::FallbackReleased {
                        kernel: kernel.name.clone(),
                        iteration,
                    });
                }
            }
            LadderTransition::None => {}
        }
        // Quarantine exactly like the counter watchdog: anomalous samples
        // are garbage and safe-state samples were produced under the pin —
        // neither may reach any rung's learning loops.
        if engaged_before || what.is_some() {
            return;
        }
        // The sample was produced under `rung_before`'s decision: only
        // that rung's governor learns from it.
        if let Some(g) = self.rung_governor(rung_before) {
            g.observe(kernel, iteration, cfg, counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::BaselineGovernor;

    fn ladder() -> Ladder {
        Ladder::new(LadderConfig::default())
    }

    fn drive(l: &mut Ladder, anomalous: bool, n: u64) {
        for _ in 0..n {
            l.tick(anomalous);
        }
    }

    #[test]
    fn demotes_one_rung_per_threshold_streak() {
        let mut l = ladder();
        drive(&mut l, true, 2);
        assert_eq!(l.rung(), Rung::Full, "below threshold");
        assert_eq!(
            l.tick(true),
            LadderTransition::Demoted {
                from: Rung::Full,
                to: Rung::CgOnly,
                hold: 4
            }
        );
        drive(&mut l, true, 3);
        assert_eq!(l.rung(), Rung::FreqOnly);
        // The terminal park demands a doubled streak.
        drive(&mut l, true, 3);
        assert_eq!(l.rung(), Rung::FreqOnly, "below safe_demote_threshold");
        drive(&mut l, true, 3);
        assert_eq!(l.rung(), Rung::SafeState);
        // Bottom rung: further anomalies change nothing.
        drive(&mut l, true, 10);
        assert_eq!(l.rung(), Rung::SafeState);
        assert_eq!(l.demotions(), 3);
    }

    #[test]
    fn backoff_doubles_per_demotion_and_caps() {
        let mut l = ladder();
        drive(&mut l, true, 3);
        assert_eq!(l.hold(), 4);
        drive(&mut l, true, 3);
        assert_eq!(l.hold(), 8);
        drive(&mut l, true, 6); // terminal step: safe_demote_threshold
        assert_eq!(l.hold(), 16);
        // Climb back up, then demote repeatedly: the hold saturates.
        drive(&mut l, false, 16 + 16 + 16);
        assert_eq!(l.rung(), Rung::Full);
        for _ in 0..4 {
            drive(&mut l, true, 3);
        }
        assert_eq!(l.rung(), Rung::SafeState);
        assert_eq!(l.hold(), 64, "capped at max_hold");
    }

    #[test]
    fn suspect_pressure_never_takes_the_terminal_park() {
        let mut l = ladder();
        // Suspect intervals demote the capability rungs like harm does...
        for _ in 0..6 {
            l.signal(LadderSignal::Suspect);
        }
        assert_eq!(l.rung(), Rung::FreqOnly);
        // ...but at freq-only they hold: no amount of contained noise
        // surrenders the last knob, and no promotion credit accrues.
        for _ in 0..100 {
            assert_eq!(l.signal(LadderSignal::Suspect), LadderTransition::None);
        }
        assert_eq!(l.rung(), Rung::FreqOnly, "suspect never parks");
        assert_eq!(l.promotions(), 0);
        // Demonstrated harm still does, at the doubled terminal threshold.
        for _ in 0..6 {
            l.signal(LadderSignal::Harmful);
        }
        assert_eq!(l.rung(), Rung::SafeState);
    }

    #[test]
    fn suspect_blocks_promotion_without_growing_the_streak() {
        let mut l = ladder();
        drive(&mut l, true, 6); // -> FreqOnly, required hold 8
        assert_eq!(l.rung(), Rung::FreqOnly);
        // Alternate clean and suspect: the clean streak never reaches the
        // hold, so the rung neither promotes nor parks.
        for _ in 0..40 {
            l.signal(LadderSignal::Clean);
            l.signal(LadderSignal::Suspect);
        }
        assert_eq!(l.rung(), Rung::FreqOnly);
        assert_eq!(l.promotions(), 0, "suspect intervals reset promotion credit");
    }

    #[test]
    fn promotion_requires_full_hold_per_step() {
        let mut l = ladder();
        drive(&mut l, true, 6); // -> FreqOnly, required hold 8
        assert_eq!(l.rung(), Rung::FreqOnly);
        drive(&mut l, false, 7);
        assert_eq!(l.rung(), Rung::FreqOnly, "7 clean < hold 8");
        assert_eq!(
            l.tick(false),
            LadderTransition::Promoted {
                from: Rung::FreqOnly,
                to: Rung::CgOnly
            }
        );
        drive(&mut l, false, 8);
        assert_eq!(l.rung(), Rung::Full);
        assert_eq!(l.promotions(), 2);
    }

    #[test]
    fn clean_streak_at_full_resets_backoff() {
        let mut l = ladder();
        drive(&mut l, true, 6); // two demotions, hold now 8
        drive(&mut l, false, 16); // promote back to Full
        assert_eq!(l.rung(), Rung::Full);
        drive(&mut l, false, 16); // clean_reset at Full
        drive(&mut l, true, 3);
        assert_eq!(l.hold(), 4, "backoff reset to base_hold");
    }

    #[test]
    fn square_wave_never_oscillates_once_demoted() {
        // Fault pattern: 3 anomalous, 3 clean, repeating. The first burst
        // demotes (hold 4 > clean half-period 3), and no later clean burst
        // is ever long enough to promote.
        let mut l = ladder();
        let mut promoted = 0;
        for cycle in 0..50 {
            for _ in 0..3 {
                l.tick(true);
            }
            for _ in 0..3 {
                if matches!(l.tick(false), LadderTransition::Promoted { .. }) {
                    promoted += 1;
                }
            }
            assert!(l.rung() != Rung::Full, "cycle {cycle}: demoted for good");
        }
        assert_eq!(promoted, 0, "hysteresis holds against the square wave");
        // Bursts of 3 never reach the terminal threshold of 6, so the
        // flapping fault settles one rung above the park.
        assert_eq!(l.rung(), Rung::FreqOnly, "flapping settles off the floor");
    }

    #[test]
    fn degrade_governor_routes_decisions_by_rung() {
        let stats = PolicyStats::new();
        let mut g = DegradeLayer::new(
            LadderConfig::default(),
            Box::new(BaselineGovernor::new()),
            Box::new(BaselineGovernor::new()),
        )
        .with_stats(&stats)
        .layer(Box::new(BaselineGovernor::new()));
        let k = KernelProfile::builder("k").build();
        let garbage = CounterSample {
            duration: Seconds(0.01),
            valu_busy_pct: f64::NAN,
            ..CounterSample::default()
        };
        // Drive all the way down: 3 + 3 anomalies through the intermediate
        // rungs, then the doubled terminal streak of 6.
        for i in 0..12 {
            let cfg = g.decide(&k, i);
            g.observe(&k, i, cfg, &garbage);
        }
        assert_eq!(g.decide(&k, 12), safe_state());
        assert_eq!(stats.rung_demotions(), 3);
        assert_eq!(stats.fallback_engagements(), 1, "bottom rung counts as park");
        let residency = stats.rung_residency();
        assert_eq!(residency[Rung::Full.index()], 3);
        assert_eq!(residency[Rung::CgOnly.index()], 3);
        assert_eq!(residency[Rung::FreqOnly.index()], 6);
    }
}
