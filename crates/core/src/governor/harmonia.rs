//! The Harmonia governor: Algorithm 1 (coarse + fine two-level tuning).
//!
//! Per kernel, at every kernel boundary:
//!
//! 1. predict sensitivities from the counters and bin them;
//! 2. if the bins changed **and** the previous iteration did not change the
//!    tunables, this is a genuine application phase change →
//!    `SetCU_Freq_MemBW()` (the CG jump) and the FG state resets;
//! 3. if the bins changed but the tunables *were* changed last iteration,
//!    the sensitivity shift is an artifact of our own actuation →
//!    `Revert_prev_decision()`;
//! 4. if the bins are unchanged, run one FG feedback step.
//!
//! Kernel state persists across application iterations ("Harmonia records
//! the last best hardware configuration for all kernels within that
//! application. This state is the initial state for the subsequent
//! iteration").

use crate::binning::SensitivityBin;
use crate::governor::coarse::{CoarseGrain, SensitivityBins};
use crate::governor::fine::{FgState, FineGrain};
use crate::governor::Governor;
use crate::predictor::SensitivityPredictor;
use crate::telemetry::{TraceEvent, TraceHandle};
use harmonia_sim::{CounterSample, KernelProfile};
use harmonia_types::{GridSpec, HwConfig, Tunable};
use std::collections::HashMap;

/// Configuration switches for [`HarmoniaGovernor`] — used for the paper's
/// CG-only comparison and the compute-DVFS-only ablation.
#[derive(Debug, Clone)]
pub struct HarmoniaConfig {
    /// Run the coarse-grain block.
    pub enable_cg: bool,
    /// Run the fine-grain block.
    pub enable_fg: bool,
    /// Which tunables the governor may touch.
    pub tunables: Vec<Tunable>,
    /// The device grid the governor steps and jumps along (and whose
    /// maximum is each kernel's initial configuration).
    pub grid: GridSpec,
}

impl Default for HarmoniaConfig {
    fn default() -> Self {
        Self {
            enable_cg: true,
            enable_fg: true,
            tunables: Tunable::ALL.to_vec(),
            grid: GridSpec::HD7970,
        }
    }
}

impl HarmoniaConfig {
    /// Full Harmonia (CG + FG over all three tunables).
    pub fn full() -> Self {
        Self::default()
    }

    /// Coarse-grain tuning only (the paper's "CG" bars).
    pub fn cg_only() -> Self {
        Self {
            enable_fg: false,
            ..Self::default()
        }
    }

    /// Compute frequency/voltage scaling only — the ablation showing
    /// traditional DVFS achieves just ~3% ED² gain (Section 7.2).
    pub fn freq_only() -> Self {
        Self {
            tunables: vec![Tunable::CuFreq],
            ..Self::default()
        }
    }

    /// The same switches on a different device grid (builder style).
    pub fn on_grid(mut self, grid: GridSpec) -> Self {
        self.grid = grid;
        self
    }
}

/// Exponential smoothing weight for the per-kernel nominal counter values.
/// The paper's predictor inputs are per-kernel counters that "vary little"
/// across configurations (Section 4.2); averaging the online samples
/// recreates that stability when counters are read at whatever
/// configuration happens to be active.
const COUNTER_SMOOTHING: f64 = 0.3;

/// Consecutive reverts tolerated before the new sensitivity reading is
/// accepted anyway (breaks actuation/observation limit cycles).
const MAX_CONSECUTIVE_REVERTS: u32 = 2;

/// Coarse-grain retunes allowed per kernel. "In most applications CG tuning
/// requires only one iteration" (Section 7.2); a small budget lets genuine
/// phase changes re-trigger CG while preventing nominal-counter drift from
/// endlessly resetting the fine-grain search.
const MAX_CG_EVENTS: u32 = 2;

#[derive(Debug, Clone)]
struct KernelState {
    /// Configuration for the next invocation.
    cfg: HwConfig,
    /// Configuration before the most recent change (revert target).
    prev_cfg: HwConfig,
    /// Whether the previous observation changed the tunables.
    cfg_changed_last: bool,
    /// Whether that change was purely downward (power-reducing). Only
    /// downward changes are candidates for the revert guard: reverting an
    /// upward recovery move would fight the fine-grain loop.
    last_change_was_decrement: bool,
    /// Last accepted sensitivity bins.
    last_bins: Option<SensitivityBins>,
    /// Candidate new bins awaiting confirmation (one consecutive repeat).
    pending_bins: Option<SensitivityBins>,
    /// Per-kernel nominal counter values (running average of observations).
    nominal: Option<harmonia_sim::CounterSample>,
    /// Consecutive revert-guard activations.
    reverts: u32,
    /// Coarse-grain retunes performed so far.
    cg_events: u32,
    /// Fine-grain loop state.
    fg: FgState,
}

impl KernelState {
    fn new(initial: HwConfig) -> Self {
        Self {
            cfg: initial,
            prev_cfg: initial,
            cfg_changed_last: false,
            last_change_was_decrement: false,
            last_bins: None,
            pending_bins: None,
            nominal: None,
            reverts: 0,
            cg_events: 0,
            fg: FgState::new(),
        }
    }
}

/// The two-level Harmonia power-management governor.
///
/// Hardening (safe-state watchdog, counter sanitization) is not built in:
/// compose it via [`WatchdogLayer`](crate::governor::WatchdogLayer) /
/// [`SanitizeLayer`](crate::governor::SanitizeLayer) or ask the
/// [`PolicySpec`](crate::governor::PolicySpec) registry for a
/// `hardened:*` stack.
#[derive(Debug, Clone)]
pub struct HarmoniaGovernor {
    cg: CoarseGrain,
    fg: FineGrain,
    config: HarmoniaConfig,
    name: String,
    kernels: HashMap<String, KernelState>,
    trace: TraceHandle,
}

impl HarmoniaGovernor {
    /// Creates the full CG+FG governor with the given sensitivity predictor.
    pub fn new(predictor: SensitivityPredictor) -> Self {
        Self::with_config(predictor, HarmoniaConfig::full())
    }

    /// Creates a governor with explicit configuration switches.
    pub fn with_config(predictor: SensitivityPredictor, config: HarmoniaConfig) -> Self {
        let name = match (config.enable_cg, config.enable_fg, config.tunables.len()) {
            (true, true, 3) => "harmonia".to_string(),
            (true, false, 3) => "cg-only".to_string(),
            (true, true, 1) => "freq-only".to_string(),
            _ => format!(
                "harmonia(cg={},fg={},t={})",
                config.enable_cg,
                config.enable_fg,
                config.tunables.len()
            ),
        };
        Self {
            cg: CoarseGrain::with_tunables(predictor, config.tunables.clone())
                .with_grid(config.grid),
            fg: FineGrain::with_tunables(config.tunables.clone()).with_grid(config.grid),
            config,
            name,
            kernels: HashMap::new(),
            trace: TraceHandle::disabled(),
        }
    }

    fn state_mut(&mut self, kernel: &str) -> &mut KernelState {
        let initial = HwConfig::max_on(&self.config.grid);
        self.kernels
            .entry(kernel.to_string())
            .or_insert_with(|| KernelState::new(initial))
    }

    /// The configuration currently selected for `kernel` (for inspection).
    pub fn current_config(&self, kernel: &str) -> Option<HwConfig> {
        self.kernels.get(kernel).map(|s| s.cfg)
    }
}

impl Governor for HarmoniaGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    fn decide(&mut self, kernel: &KernelProfile, _iteration: u64) -> HwConfig {
        self.state_mut(&kernel.name).cfg
    }

    fn observe(
        &mut self,
        kernel: &KernelProfile,
        iteration: u64,
        cfg: HwConfig,
        counters: &CounterSample,
    ) {
        let enable_cg = self.config.enable_cg;
        let enable_fg = self.config.enable_fg;
        let grid = self.config.grid;
        let cg = self.cg.clone();
        let fg = self.fg.clone();
        let trace = self.trace.clone();

        let state = self.state_mut(&kernel.name);
        // Predict on the kernel's *nominal* counter values — a running
        // average of the observed samples, the online equivalent of Section
        // 4.2's per-kernel averages. Instantaneous counters swing with the
        // active configuration and would masquerade as phase changes.
        let nominal = match &state.nominal {
            Some(prev) => prev.ewma_toward(counters, COUNTER_SMOOTHING),
            None => *counters,
        };
        state.nominal = Some(nominal);
        let sensitivity = cg.predict(&nominal);
        let bins = cg.bins(sensitivity);
        trace.emit(|| TraceEvent::Prediction {
            kernel: kernel.name.clone(),
            iteration,
            cu: sensitivity.cu,
            freq: sensitivity.freq,
            bandwidth: sensitivity.bandwidth,
            cu_bin: bins.cu,
            freq_bin: bins.freq,
            bw_bin: bins.bandwidth,
        });

        let rate_now = if counters.duration.value() > 0.0 {
            counters.valu_insts as f64 / counters.duration.value()
        } else {
            0.0
        };
        // A bin change must be confirmed on a second consecutive reading
        // before CG acts — the first reading may be phase noise or an
        // actuation transient (the paper's revert guard serves the same
        // purpose; both are kept).
        let sensitivity_changed = if state.last_bins.is_none() {
            true // bootstrap: first reading drives the initial CG jump
        } else if state.last_bins == Some(bins) {
            state.pending_bins = None;
            false
        } else if state.pending_bins == Some(bins) {
            state.pending_bins = None;
            true
        } else {
            state.pending_bins = Some(bins);
            false
        };

        let mut cg_applied = false;
        let cg_budget_left = state.cg_events < MAX_CG_EVENTS;
        let next = if enable_cg && sensitivity_changed && cg_budget_left {
            if state.cfg_changed_last
                && state.last_change_was_decrement
                && state.reverts < MAX_CONSECUTIVE_REVERTS
            {
                // Sensitivities were perturbed by our own previous CG
                // actuation: revert and wait for a clean reading
                // (Algorithm 1's Revert_prev_decision). FG moves are not
                // reverted here — they are validated by direct performance
                // feedback instead.
                state.reverts += 1;
                state.cfg_changed_last = false;
                state.fg.note(&grid, rate_now, cfg);
                state.fg.mark_bad_if_slow(rate_now, cfg);
                let restored = state.prev_cfg;
                trace.emit(|| TraceEvent::RevertGuard {
                    kernel: kernel.name.clone(),
                    iteration,
                    from: cfg.into(),
                    to: restored.into(),
                });
                state.cfg = restored;
                return;
            }
            state.reverts = 0;
            state.fg.note(&grid, rate_now, cfg);
            // Genuine phase change: coarse-grain jump; the FG search resets
            // but keeps its throughput history so a CG misprediction shows
            // up as a negative gradient next iteration.
            state.last_bins = Some(bins);
            state.fg.retune();
            state.cg_events += 1;
            cg_applied = true;
            let jumped = cg.apply(cfg, bins);
            trace.emit(|| TraceEvent::CgRetune {
                kernel: kernel.name.clone(),
                iteration,
                from: cfg.into(),
                to: jumped.into(),
                cu_bin: bins.cu,
                freq_bin: bins.freq,
                bw_bin: bins.bandwidth,
            });
            jumped
        } else if enable_fg {
            // Stable sensitivities: fine-grain feedback step on the VALU
            // throughput proxy. HIGH-sensitivity tunables are not probed
            // downward.
            state.reverts = 0;
            let accepted = state.last_bins.unwrap_or(bins);
            fg.step_traced(
                &mut state.fg,
                cfg,
                rate_now,
                |t| accepted.bin_for(t) != SensitivityBin::High,
                &trace,
                &kernel.name,
                iteration,
            )
        } else {
            state.last_bins = Some(bins);
            state.fg.note(&grid, rate_now, cfg);
            cfg
        };

        let _ = cg_applied;
        state.prev_cfg = cfg;
        state.cfg_changed_last = next != cfg;
        state.last_change_was_decrement = next != cfg
            && Tunable::ALL
                .iter()
                .all(|&t| next.level_on(&grid, t).index <= cfg.level_on(&grid, t).index);
        state.cfg = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ComputeConfig, MegaHertz, MemoryConfig};

    fn governor() -> HarmoniaGovernor {
        HarmoniaGovernor::new(SensitivityPredictor::paper_table3())
    }

    fn compute_hot() -> CounterSample {
        CounterSample {
            duration: harmonia_types::Seconds(0.01),
            valu_busy_pct: 95.0,
            valu_utilization_pct: 100.0,
            mem_unit_busy_pct: 5.0,
            ic_activity: 0.02,
            norm_vgpr: 0.5,
            norm_sgpr: 0.3,
            valu_insts: 1_000_000,
            ..CounterSample::default()
        }
    }

    fn memory_hot() -> CounterSample {
        CounterSample {
            duration: harmonia_types::Seconds(0.01),
            valu_busy_pct: 20.0,
            valu_utilization_pct: 90.0,
            mem_unit_busy_pct: 95.0,
            mem_unit_stalled_pct: 40.0,
            ic_activity: 0.95,
            norm_vgpr: 0.1,
            norm_sgpr: 0.2,
            valu_insts: 100_000,
            ..CounterSample::default()
        }
    }

    #[test]
    fn starts_at_boost() {
        let mut g = governor();
        let k = KernelProfile::builder("k").build();
        assert_eq!(g.decide(&k, 0), HwConfig::max_hd7970());
    }

    #[test]
    fn compute_hot_kernel_lowers_memory() {
        let mut g = governor();
        let k = KernelProfile::builder("k").build();
        let cfg = g.decide(&k, 0);
        g.observe(&k, 0, cfg, &compute_hot());
        let next = g.decide(&k, 1);
        assert!(
            next.memory.bus_freq().value() < 1375,
            "CG should cut memory frequency for a compute-hot kernel, got {next}"
        );
        assert_eq!(next.compute.cu_count(), 32, "compute must stay high");
    }

    #[test]
    fn memory_hot_kernel_lowers_compute() {
        let mut g = governor();
        let k = KernelProfile::builder("k").build();
        let cfg = g.decide(&k, 0);
        g.observe(&k, 0, cfg, &memory_hot());
        let next = g.decide(&k, 1);
        assert_eq!(
            next.memory.bus_freq().value(),
            1375,
            "memory must stay high, got {next}"
        );
        assert!(next.compute.cu_count() < 32 || next.compute.freq().value() < 1000);
    }

    #[test]
    fn revert_guard_fires_after_actuation_artifacts() {
        let mut g = governor();
        let k = KernelProfile::builder("k").build();
        // Iter 0: compute-hot → CG changes config.
        let c0 = g.decide(&k, 0);
        g.observe(&k, 0, c0, &compute_hot());
        let c1 = g.decide(&k, 1);
        assert_ne!(c0, c1);
        // Iter 1: counters flip drastically (artifact of the change) →
        // revert to the previous configuration.
        g.observe(&k, 1, c1, &memory_hot());
        let c2 = g.decide(&k, 2);
        assert_eq!(c2, c0, "revert must restore the pre-change config");
    }

    #[test]
    fn stable_bins_run_fg_steps() {
        let mut g = governor();
        let k = KernelProfile::builder("k").build();
        let mut cfg = g.decide(&k, 0);
        // Same compute-hot counters repeatedly: first CG, then FG reductions.
        for i in 0..4 {
            g.observe(&k, i, cfg, &compute_hot());
            cfg = g.decide(&k, i + 1);
        }
        // FG should have nudged the memory (or CU) tunable further down than
        // the CG jump alone.
        let cg_only_cfg = {
            let mut g2 = HarmoniaGovernor::with_config(
                SensitivityPredictor::paper_table3(),
                HarmoniaConfig::cg_only(),
            );
            let mut c = g2.decide(&k, 0);
            for i in 0..4 {
                g2.observe(&k, i, c, &compute_hot());
                c = g2.decide(&k, i + 1);
            }
            c
        };
        assert!(
            cfg.memory.bus_freq() <= cg_only_cfg.memory.bus_freq(),
            "FG should refine below the CG point"
        );
    }

    #[test]
    fn freq_only_never_touches_cu_or_memory() {
        let mut g = HarmoniaGovernor::with_config(
            SensitivityPredictor::paper_table3(),
            HarmoniaConfig::freq_only(),
        );
        let k = KernelProfile::builder("k").build();
        let mut cfg = g.decide(&k, 0);
        for i in 0..6 {
            g.observe(&k, i, cfg, &compute_hot());
            cfg = g.decide(&k, i + 1);
        }
        assert_eq!(cfg.compute.cu_count(), 32);
        assert_eq!(cfg.memory.bus_freq().value(), 1375);
        assert_eq!(g.name(), "freq-only");
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(governor().name(), "harmonia");
        let cg = HarmoniaGovernor::with_config(
            SensitivityPredictor::paper_table3(),
            HarmoniaConfig::cg_only(),
        );
        assert_eq!(cg.name(), "cg-only");
    }

    #[test]
    fn per_kernel_state_is_independent() {
        let mut g = governor();
        let a = KernelProfile::builder("a").build();
        let b = KernelProfile::builder("b").build();
        let ca = g.decide(&a, 0);
        g.observe(&a, 0, ca, &compute_hot());
        // Kernel b is untouched by kernel a's history.
        assert_eq!(g.decide(&b, 0), HwConfig::max_hd7970());
        assert_ne!(g.decide(&a, 1), g.decide(&b, 0));
        assert!(g.current_config("a").is_some());
        assert!(g.current_config("missing").is_none());
    }

    #[test]
    fn config_constructor_smoke() {
        let custom = HarmoniaConfig {
            enable_cg: false,
            enable_fg: true,
            tunables: vec![Tunable::MemFreq, Tunable::CuCount],
            ..HarmoniaConfig::default()
        };
        let g = HarmoniaGovernor::with_config(SensitivityPredictor::paper_table3(), custom);
        assert!(g.name().contains("cg=false"));
        let _ = HwConfig::new(
            ComputeConfig::new(32, MegaHertz(1000)).unwrap(),
            MemoryConfig::new(MegaHertz(1375)).unwrap(),
        );
    }
}
