//! The fine-grain (FG) tuning block.
//!
//! Algorithm 1's feedback loop, run when sensitivities are stable:
//!
//! * **gradient ≥ 0** (performance preserved): *decrement* — step the
//!   managed tunables one grid step down to shave power;
//! * **gradient < 0** (performance degraded): *increment* — step back up,
//!   count dithering, and after `max_dither` oscillations converge to the
//!   best (lowest-power, performance-preserving) state seen;
//! * degradation right after a multi-tunable probe reverts all of it and
//!   switches to one-tunable-at-a-time probing so the responsible tunable
//!   can be isolated, as Section 5.2 describes.
//!
//! Tunables whose sensitivity is binned HIGH are not probed downward — the
//! CG step has already established that performance scales with them, so
//! their minimum-power no-loss setting is the maximum. They still
//! participate in upward recovery.
//!
//! The paper uses the `VALUBusy` gradient as the performance proxy. Because
//! our workloads' per-iteration work can scale with data-dependent phases,
//! the proxy here is the *VALU instruction rate* (`VALUInsts / duration`) —
//! the same signal (ALU progress per wall-clock second) made robust to
//! work-size changes; the raw `VALUBusy` value is still recorded in traces.

use crate::telemetry::{TraceEvent, TraceHandle};
use harmonia_types::{GridSpec, HwConfig, Tunable};
use serde::{Deserialize, Serialize};

/// Relative throughput drop treated as a performance degradation.
const DEGRADATION_TOLERANCE: f64 = 0.01;

/// Direction of a fine-grain move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Direction {
    Down,
    Up,
}

/// Per-kernel state of the FG loop.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FgState {
    /// Throughput proxy observed for the previous invocation.
    last_rate: Option<f64>,
    /// Best throughput seen since the last CG retune.
    best_rate: Option<f64>,
    /// Configuration that achieved `best_rate` at the lowest power proxy.
    best_cfg: Option<HwConfig>,
    /// Moves taken by the previous decision.
    last_moves: Vec<(Tunable, Direction)>,
    /// Oscillation count.
    dither: u32,
    /// Tunables frozen (grid floor reached or converged).
    frozen: Vec<Tunable>,
    /// Round-robin cursor for sequential isolation mode.
    cursor: usize,
    /// Probe one tunable at a time (after a blamed multi-tunable probe).
    sequential: bool,
    /// The loop has converged to `best_cfg` until the next CG retune.
    converged: bool,
    /// Configurations observed to degrade performance — never probed again
    /// within the current phase regime.
    bad: Vec<HwConfig>,
}

impl FgState {
    /// Creates a fresh FG state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the search while keeping the throughput history *and* the
    /// best state seen — used on a CG retune. Keeping the best state is
    /// what lets FG claw back a coarse-grain misprediction: "converge to
    /// last state with zero gradient" can reach back past the CG jump
    /// ("Harmonia records the last best hardware configuration").
    pub fn retune(&mut self) {
        self.last_moves.clear();
        self.dither = 0;
        self.frozen.clear();
        self.cursor = 0;
        self.sequential = false;
        self.converged = false;
        self.bad.clear(); // a new phase may tolerate what the old one didn't
    }

    /// Whether the loop has converged (no further moves until a CG retune).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Records an observed (rate, configuration) pair without advancing the
    /// search — used for observations made while the CG block is in control.
    /// The rate becomes the gradient baseline, so a CG jump that costs
    /// performance is detected by the very next FG step, and the
    /// configuration feeds "converge to last state with zero gradient".
    /// `grid` normalizes the power proxy that tie-breaks equal-performance
    /// states.
    pub fn note(&mut self, grid: &GridSpec, rate: f64, cfg: HwConfig) {
        self.update_best(grid, rate, cfg);
        self.last_rate = Some(rate);
    }

    /// Blacklists `cfg` if its observed rate is materially below the best
    /// seen — used by the governor's revert path so a configuration that was
    /// both sensitivity-perturbing *and* slow is not probed again.
    pub fn mark_bad_if_slow(&mut self, rate: f64, cfg: HwConfig) {
        if let Some(best) = self.best_rate {
            if rate < best * (1.0 - DEGRADATION_TOLERANCE) && !self.bad.contains(&cfg) {
                self.bad.push(cfg);
            }
        }
    }

    fn is_frozen(&self, t: Tunable) -> bool {
        self.frozen.contains(&t)
    }

    fn freeze(&mut self, t: Tunable) {
        if !self.is_frozen(t) {
            self.frozen.push(t);
        }
    }

    /// Sum of normalized tunable levels on `grid` — a cheap monotone power
    /// proxy used to prefer lower-power configurations among
    /// equal-performance ones.
    fn power_proxy(grid: &GridSpec, cfg: HwConfig) -> f64 {
        Tunable::ALL
            .iter()
            .map(|&t| cfg.level_on(grid, t).fraction)
            .sum()
    }

    fn update_best(&mut self, grid: &GridSpec, rate: f64, cfg: HwConfig) {
        let better = match (self.best_rate, self.best_cfg) {
            (None, _) | (_, None) => true,
            (Some(best), Some(best_cfg)) => {
                rate > best * (1.0 + DEGRADATION_TOLERANCE)
                    || (rate >= best * (1.0 - DEGRADATION_TOLERANCE)
                        && Self::power_proxy(grid, cfg) < Self::power_proxy(grid, best_cfg))
            }
        };
        if better {
            self.best_rate = Some(self.best_rate.map_or(rate, |b| b.max(rate)));
            self.best_cfg = Some(cfg);
        }
    }
}

/// The FG decision block.
#[derive(Debug, Clone)]
pub struct FineGrain {
    tunables: Vec<Tunable>,
    max_dither: u32,
    grid: GridSpec,
}

impl FineGrain {
    /// Creates an FG block managing all three tunables with the default
    /// dithering bound, stepping the HD7970 grid.
    pub fn new() -> Self {
        Self::with_tunables(Tunable::ALL.to_vec())
    }

    /// Creates an FG block managing only `tunables`.
    pub fn with_tunables(tunables: Vec<Tunable>) -> Self {
        Self {
            tunables,
            max_dither: 2,
            grid: GridSpec::HD7970,
        }
    }

    /// Overrides the dithering bound before convergence is forced.
    pub fn with_max_dither(mut self, max_dither: u32) -> Self {
        self.max_dither = max_dither;
        self
    }

    /// Steps along `grid` instead of the HD7970 lattice.
    pub fn with_grid(mut self, grid: GridSpec) -> Self {
        self.grid = grid;
        self
    }

    /// The managed tunables.
    pub fn tunables(&self) -> &[Tunable] {
        &self.tunables
    }

    /// One FG step. `rate` is the throughput proxy of the invocation that
    /// ran at `cfg`; `probe_down(t)` says whether tunable `t` may be probed
    /// downward (false for HIGH-sensitivity tunables).
    pub fn step<F: Fn(Tunable) -> bool>(
        &self,
        state: &mut FgState,
        cfg: HwConfig,
        rate: f64,
        probe_down: F,
    ) -> HwConfig {
        self.step_traced(state, cfg, rate, probe_down, &TraceHandle::disabled(), "", 0)
    }

    /// [`step`](Self::step) with decision-trace emission: every probe,
    /// accept, revert (with the blamed tunables), convergence, and
    /// known-bad skip is reported through `trace`. With a disabled handle
    /// this is exactly `step` — the events are never constructed.
    #[allow(clippy::too_many_arguments)]
    pub fn step_traced<F: Fn(Tunable) -> bool>(
        &self,
        state: &mut FgState,
        cfg: HwConfig,
        rate: f64,
        probe_down: F,
        trace: &TraceHandle,
        kernel: &str,
        iteration: u64,
    ) -> HwConfig {
        if state.converged {
            return state.best_cfg.unwrap_or(cfg);
        }
        let Some(last) = state.last_rate else {
            state.last_rate = Some(rate);
            state.update_best(&self.grid, rate, cfg);
            let next = self.step_downward(state, cfg, &probe_down, trace, kernel, iteration);
            emit_probe(trace, kernel, iteration, cfg, next, &state.last_moves);
            return next;
        };

        state.last_rate = Some(rate);
        if rate >= last * (1.0 - DEGRADATION_TOLERANCE) {
            // Performance preserved or improved: keep shaving power.
            state.update_best(&self.grid, rate, cfg);
            trace.emit(|| TraceEvent::FgAccept {
                kernel: kernel.to_string(),
                iteration,
                cfg: cfg.into(),
                rate,
            });
            let was_climbing = state
                .last_moves
                .iter()
                .any(|(_, d)| *d == Direction::Up);
            if was_climbing && rate > last * (1.0 + DEGRADATION_TOLERANCE) {
                // The climb is paying off (recovering from a misprediction):
                // keep climbing the same tunables until the gradient
                // flattens.
                let targets: Vec<Tunable> =
                    state.last_moves.iter().map(|(t, _)| *t).collect();
                state.last_moves.clear();
                let mut next = cfg;
                for t in targets {
                    if let Some(up) = next.step_up_on(&self.grid, t) {
                        next = up;
                        state.last_moves.push((t, Direction::Up));
                    }
                }
                emit_probe(trace, kernel, iteration, cfg, next, &state.last_moves);
                return next;
            }
            let next = self.step_downward(state, cfg, &probe_down, trace, kernel, iteration);
            emit_probe(trace, kernel, iteration, cfg, next, &state.last_moves);
            next
        } else {
            // Performance degraded: remember the offending configuration,
            // increment state, count dithering.
            if !state.bad.contains(&cfg) {
                state.bad.push(cfg);
            }
            state.dither += 1;
            if state.dither > self.max_dither {
                state.converged = true;
                let best = state.best_cfg.unwrap_or(cfg);
                trace.emit(|| TraceEvent::FgConverged {
                    kernel: kernel.to_string(),
                    iteration,
                    cfg: best.into(),
                });
                return best;
            }
            let blamed: Vec<Tunable> = state
                .last_moves
                .iter()
                .filter(|(_, d)| *d == Direction::Down)
                .map(|(t, _)| *t)
                .collect();
            let next = self.step_upward(state, cfg);
            trace.emit(|| TraceEvent::FgRevert {
                kernel: kernel.to_string(),
                iteration,
                from: cfg.into(),
                to: next.into(),
                blamed: blamed.clone(),
            });
            next
        }
    }

    /// Decrement move: step allowed, unfrozen tunables down.
    fn step_downward<F: Fn(Tunable) -> bool>(
        &self,
        state: &mut FgState,
        cfg: HwConfig,
        probe_down: &F,
        trace: &TraceHandle,
        kernel: &str,
        iteration: u64,
    ) -> HwConfig {
        state.last_moves.clear();
        let mut next = cfg;
        let candidates: Vec<Tunable> = self
            .tunables
            .iter()
            .copied()
            .filter(|&t| !state.is_frozen(t) && probe_down(t))
            .collect();
        if candidates.is_empty() {
            return next;
        }
        if state.sequential {
            for _ in 0..candidates.len() {
                let t = candidates[state.cursor % candidates.len()];
                state.cursor += 1;
                if let Some(down) = next.step_down_on(&self.grid, t) {
                    if state.bad.contains(&down) {
                        // already known to degrade performance
                        trace.emit(|| TraceEvent::KnownBadSkip {
                            kernel: kernel.to_string(),
                            iteration,
                            cfg: down.into(),
                        });
                        continue;
                    }
                    next = down;
                    state.last_moves.push((t, Direction::Down));
                    break;
                }
                state.freeze(t);
            }
        } else {
            for &t in &candidates {
                if let Some(down) = next.step_down_on(&self.grid, t) {
                    next = down;
                    state.last_moves.push((t, Direction::Down));
                } else {
                    state.freeze(t);
                }
            }
            if state.bad.contains(&next) {
                // The concurrent probe lands on a known-bad point: retry
                // one tunable at a time, skipping known-bad neighbours.
                trace.emit(|| TraceEvent::KnownBadSkip {
                    kernel: kernel.to_string(),
                    iteration,
                    cfg: next.into(),
                });
                state.last_moves.clear();
                next = cfg;
                for &t in &candidates {
                    if let Some(down) = cfg.step_down_on(&self.grid, t) {
                        if !state.bad.contains(&down) {
                            next = down;
                            state.last_moves.push((t, Direction::Down));
                            break;
                        }
                    }
                }
            }
        }
        next
    }

    /// Increment move: undo the blamed probe, or climb when the degradation
    /// was not our doing (e.g. a coarse-grain misprediction).
    fn step_upward(&self, state: &mut FgState, cfg: HwConfig) -> HwConfig {
        let mut next = cfg;
        let blamed: Vec<Tunable> = state
            .last_moves
            .iter()
            .filter(|(_, d)| *d == Direction::Down)
            .map(|(t, _)| *t)
            .collect();
        state.last_moves.clear();
        if blamed.len() > 1 {
            state.sequential = true;
        }
        let targets: Vec<Tunable> = if blamed.is_empty() {
            // Nothing to blame: recover by raising every managed tunable.
            self.tunables.clone()
        } else {
            blamed
        };
        for t in targets {
            if let Some(up) = next.step_up_on(&self.grid, t) {
                next = up;
                state.last_moves.push((t, Direction::Up));
            }
        }
        next
    }
}

impl Default for FineGrain {
    fn default() -> Self {
        Self::new()
    }
}

/// Emits an [`TraceEvent::FgProbe`] for a move from `from` to `to` (no-op
/// when the step produced no move or tracing is disabled).
fn emit_probe(
    trace: &TraceHandle,
    kernel: &str,
    iteration: u64,
    from: HwConfig,
    to: HwConfig,
    moves: &[(Tunable, Direction)],
) {
    if from == to {
        return;
    }
    trace.emit(|| TraceEvent::FgProbe {
        kernel: kernel.to_string(),
        iteration,
        from: from.into(),
        to: to.into(),
        moved_down: moves
            .iter()
            .filter(|(_, d)| *d == Direction::Down)
            .map(|(t, _)| *t)
            .collect(),
        moved_up: moves
            .iter()
            .filter(|(_, d)| *d == Direction::Up)
            .map(|(t, _)| *t)
            .collect(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allow_all(_: Tunable) -> bool {
        true
    }

    #[test]
    fn first_step_probes_downward() {
        let fg = FineGrain::new();
        let mut st = FgState::new();
        let next = fg.step(&mut st, HwConfig::max_hd7970(), 100.0, allow_all);
        assert!(next.compute.cu_count() < 32);
        assert!(next.compute.freq().value() < 1000);
        assert!(next.memory.bus_freq().value() < 1375);
    }

    #[test]
    fn high_bins_are_not_probed_down() {
        let fg = FineGrain::new();
        let mut st = FgState::new();
        let next = fg.step(&mut st, HwConfig::max_hd7970(), 100.0, |t| {
            t == Tunable::MemFreq
        });
        assert_eq!(next.compute.cu_count(), 32);
        assert_eq!(next.compute.freq().value(), 1000);
        assert!(next.memory.bus_freq().value() < 1375);
    }

    #[test]
    fn stable_rate_keeps_reducing() {
        let fg = FineGrain::new();
        let mut st = FgState::new();
        let mut cfg = HwConfig::max_hd7970();
        for _ in 0..3 {
            cfg = fg.step(&mut st, cfg, 100.0, allow_all);
        }
        assert!(cfg.compute.cu_count() <= 24);
    }

    #[test]
    fn degradation_increments_and_isolates() {
        let fg = FineGrain::new();
        let mut st = FgState::new();
        let start = HwConfig::max_hd7970();
        let probed = fg.step(&mut st, start, 100.0, allow_all);
        let recovered = fg.step(&mut st, probed, 50.0, allow_all);
        assert_eq!(recovered, start, "all probed moves must be undone");
        assert!(st.sequential, "multi-tunable blame → sequential probing");
    }

    #[test]
    fn degrading_probe_is_never_retried() {
        let fg = FineGrain::with_tunables(vec![Tunable::MemFreq]).with_max_dither(2);
        let mut st = FgState::new();
        let mut cfg = HwConfig::max_hd7970();
        // Downward probe halves throughput; recovery restores it. After one
        // failed probe the bad-config memory must keep the loop at the top.
        let mut at_max = true;
        let mut low_visits = 0;
        for _ in 0..12 {
            let rate = if at_max { 100.0 } else { 40.0 };
            let next = fg.step(&mut st, cfg, rate, allow_all);
            at_max = next.memory.bus_freq().value() == 1375;
            if !at_max {
                low_visits += 1;
            }
            cfg = next;
        }
        assert!(
            low_visits <= 1,
            "known-bad configuration probed {low_visits} times"
        );
        assert_eq!(cfg.memory.bus_freq().value(), 1375, "settles at the best state");
    }

    #[test]
    fn converged_state_is_sticky() {
        let fg = FineGrain::with_tunables(vec![Tunable::MemFreq]).with_max_dither(0);
        let mut st = FgState::new();
        let c0 = HwConfig::max_hd7970();
        let c1 = fg.step(&mut st, c0, 100.0, allow_all);
        let c2 = fg.step(&mut st, c1, 10.0, allow_all); // dither>0 → converge
        assert!(st.converged());
        let c3 = fg.step(&mut st, c2, 55.0, allow_all);
        assert_eq!(c2, c3, "no more moves after convergence");
    }

    #[test]
    fn climbs_after_external_degradation() {
        // A degradation with no probe to blame (e.g. CG misprediction)
        // raises every managed tunable.
        let fg = FineGrain::new();
        let mut st = FgState::new();
        let low = HwConfig::min_hd7970();
        // Baseline at a decent rate, no moves recorded.
        st.last_rate = Some(100.0);
        let next = fg.step(&mut st, low, 30.0, |_| false);
        assert!(next.compute.cu_count() > 4);
        assert!(next.compute.freq().value() > 300);
        assert!(next.memory.bus_freq().value() > 475);
    }

    #[test]
    fn grid_minimum_freezes() {
        let fg = FineGrain::with_tunables(vec![Tunable::CuFreq]);
        let mut st = FgState::new();
        let mut cfg = HwConfig::max_hd7970();
        for _ in 0..12 {
            cfg = fg.step(&mut st, cfg, 100.0, allow_all);
        }
        assert_eq!(cfg.compute.freq().value(), 300);
        assert!(st.is_frozen(Tunable::CuFreq));
    }

    #[test]
    fn improving_rate_never_reverts() {
        let fg = FineGrain::with_tunables(vec![Tunable::CuCount]);
        let mut st = FgState::new();
        let mut cfg = HwConfig::max_hd7970();
        let mut rate = 100.0;
        for _ in 0..3 {
            cfg = fg.step(&mut st, cfg, rate, allow_all);
            rate *= 1.05; // thrash-prone kernel: fewer CUs run faster
        }
        assert!(cfg.compute.cu_count() <= 24);
        assert_eq!(st.dither, 0);
    }

    #[test]
    fn retune_clears_search_but_keeps_history() {
        let fg = FineGrain::new();
        let mut st = FgState::new();
        let _ = fg.step(&mut st, HwConfig::max_hd7970(), 100.0, allow_all);
        st.retune();
        assert!(st.last_rate.is_some(), "rate history survives retune");
        assert!(!st.converged());
        assert_eq!(st.dither, 0);
        assert!(
            st.best_cfg.is_some(),
            "best state survives retune so mispredictions can be undone"
        );
    }

    #[test]
    fn foreign_grid_steps_stay_on_that_lattice() {
        use harmonia_types::DeviceSpec;
        let spec = DeviceSpec::v100();
        let grid = *spec.grid();
        let fg = FineGrain::new().with_grid(grid);
        let mut st = FgState::new();
        let mut cfg = harmonia_types::HwConfig::max_on(&grid);
        for _ in 0..5 {
            cfg = fg.step(&mut st, cfg, 100.0, allow_all);
            assert!(
                harmonia_types::ComputeConfig::new_on(&grid, cfg.compute.cu_count(), cfg.compute.freq()).is_ok(),
                "FG stepped off the v100 grid: {cfg}"
            );
        }
        assert!(cfg.compute.cu_count() < grid.cu_max);
    }

    #[test]
    fn climb_continues_while_improving() {
        let fg = FineGrain::new();
        let mut st = FgState::new();
        // External degradation at a low config with no blamed moves.
        st.last_rate = Some(100.0);
        let low = HwConfig::min_hd7970();
        let up1 = fg.step(&mut st, low, 30.0, |_| false); // climb all
        assert!(up1.compute.cu_count() > 4);
        // Improvement: the climb continues upward rather than probing down.
        let up2 = fg.step(&mut st, up1, 60.0, |_| false);
        assert!(up2.compute.cu_count() > up1.compute.cu_count());
        assert!(up2.memory.bus_freq() > up1.memory.bus_freq());
    }
}
