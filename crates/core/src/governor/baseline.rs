//! The stock power-management baseline.
//!
//! "Due to the consistent availability of thermal headroom, the baseline
//! power management always runs at the boost frequency of 1GHz for all
//! applications" (Section 7.1), with all CUs enabled and the memory bus at
//! its maximum — so the baseline is simply the maximum configuration.

use crate::governor::Governor;
use harmonia_sim::{CounterSample, KernelProfile};
use harmonia_types::{GridSpec, HwConfig};

/// The stock PowerTune-like baseline: always the boost configuration.
#[derive(Debug, Clone)]
pub struct BaselineGovernor {
    grid: GridSpec,
}

impl Default for BaselineGovernor {
    fn default() -> Self {
        Self {
            grid: GridSpec::HD7970,
        }
    }
}

impl BaselineGovernor {
    /// Creates the baseline governor on the HD7970 grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a baseline pinned to `grid`'s maximum configuration.
    pub fn on_grid(grid: GridSpec) -> Self {
        Self { grid }
    }
}

impl Governor for BaselineGovernor {
    fn name(&self) -> &str {
        "baseline"
    }

    fn decide(&mut self, _kernel: &KernelProfile, _iteration: u64) -> HwConfig {
        HwConfig::max_on(&self.grid)
    }

    fn observe(
        &mut self,
        _kernel: &KernelProfile,
        _iteration: u64,
        _cfg: HwConfig,
        _counters: &CounterSample,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_boost() {
        let mut g = BaselineGovernor::new();
        let k = KernelProfile::builder("k").build();
        for i in 0..5 {
            assert_eq!(g.decide(&k, i), HwConfig::max_hd7970());
            let c = CounterSample::default();
            g.observe(&k, i, HwConfig::max_hd7970(), &c);
        }
        assert_eq!(g.name(), "baseline");
    }

    #[test]
    fn foreign_grid_boost_is_that_devices_max() {
        let spec = harmonia_types::DeviceSpec::h100();
        let mut g = BaselineGovernor::on_grid(*spec.grid());
        let k = KernelProfile::builder("k").build();
        assert_eq!(g.decide(&k, 0), HwConfig::max_on(spec.grid()));
        assert_ne!(g.decide(&k, 0), HwConfig::max_hd7970());
    }
}
