//! The stock power-management baseline.
//!
//! "Due to the consistent availability of thermal headroom, the baseline
//! power management always runs at the boost frequency of 1GHz for all
//! applications" (Section 7.1), with all CUs enabled and the memory bus at
//! its maximum — so the baseline is simply the maximum configuration.

use crate::governor::Governor;
use harmonia_sim::{CounterSample, KernelProfile};
use harmonia_types::HwConfig;

/// The stock PowerTune-like baseline: always the boost configuration.
#[derive(Debug, Clone, Default)]
pub struct BaselineGovernor {
    _private: (),
}

impl BaselineGovernor {
    /// Creates the baseline governor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Governor for BaselineGovernor {
    fn name(&self) -> &str {
        "baseline"
    }

    fn decide(&mut self, _kernel: &KernelProfile, _iteration: u64) -> HwConfig {
        HwConfig::max_hd7970()
    }

    fn observe(
        &mut self,
        _kernel: &KernelProfile,
        _iteration: u64,
        _cfg: HwConfig,
        _counters: &CounterSample,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_boost() {
        let mut g = BaselineGovernor::new();
        let k = KernelProfile::builder("k").build();
        for i in 0..5 {
            assert_eq!(g.decide(&k, i), HwConfig::max_hd7970());
            let c = CounterSample::default();
            g.observe(&k, i, HwConfig::max_hd7970(), &c);
        }
        assert_eq!(g.name(), "baseline");
    }
}
