//! The coarse-grain (CG) tuning block.
//!
//! `SetCU_Freq_MemBW()` of Algorithm 1: predicted sensitivities are binned
//! HIGH/MED/LOW and each tunable jumps to the bin's empirically fixed
//! proportional value — compute sensitivity drives the CU count and CU
//! frequency, bandwidth sensitivity drives the memory bus frequency. All
//! three tunables are adjusted concurrently.

use crate::binning::SensitivityBin;
use crate::predictor::SensitivityPredictor;
use crate::sensitivity::Sensitivity;
use harmonia_sim::CounterSample;
use harmonia_types::{GridSpec, HwConfig, Tunable};
use serde::{Deserialize, Serialize};

/// Binned sensitivity levels, one per tunable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SensitivityBins {
    /// Bin of the CU-count sensitivity.
    pub cu: SensitivityBin,
    /// Bin of the CU-frequency sensitivity.
    pub freq: SensitivityBin,
    /// Bin of the memory-bandwidth sensitivity.
    pub bandwidth: SensitivityBin,
}

impl SensitivityBins {
    /// The bin that governs `tunable`.
    pub fn bin_for(&self, tunable: Tunable) -> SensitivityBin {
        match tunable {
            Tunable::CuCount => self.cu,
            Tunable::CuFreq => self.freq,
            Tunable::MemFreq => self.bandwidth,
        }
    }
}

/// The CG decision block: prediction, binning, and proportional setting.
#[derive(Debug, Clone)]
pub struct CoarseGrain {
    predictor: SensitivityPredictor,
    tunables: Vec<Tunable>,
    grid: GridSpec,
}

impl CoarseGrain {
    /// Creates a CG block managing all three tunables on the HD7970 grid.
    pub fn new(predictor: SensitivityPredictor) -> Self {
        Self::with_tunables(predictor, Tunable::ALL.to_vec())
    }

    /// Creates a CG block managing only `tunables` (ablation studies).
    pub fn with_tunables(predictor: SensitivityPredictor, tunables: Vec<Tunable>) -> Self {
        Self {
            predictor,
            tunables,
            grid: GridSpec::HD7970,
        }
    }

    /// Jumps along `grid` instead of the HD7970 lattice.
    pub fn with_grid(mut self, grid: GridSpec) -> Self {
        self.grid = grid;
        self
    }

    /// The managed tunables.
    pub fn tunables(&self) -> &[Tunable] {
        &self.tunables
    }

    /// Predicts sensitivities from a counter sample.
    pub fn predict(&self, counters: &CounterSample) -> Sensitivity {
        self.predictor.predict(counters)
    }

    /// Bins a predicted sensitivity triple: one bin per tunable, in
    /// `(CU count, CU frequency, memory bandwidth)` order.
    pub fn bins(&self, sensitivity: Sensitivity) -> SensitivityBins {
        SensitivityBins {
            cu: SensitivityBin::from_sensitivity(sensitivity.cu),
            freq: SensitivityBin::from_sensitivity(sensitivity.freq),
            bandwidth: SensitivityBin::from_sensitivity(sensitivity.bandwidth),
        }
    }

    /// Applies the binned sensitivities to `cfg`: each managed tunable moves
    /// to its bin's proportional grid value.
    pub fn apply(&self, cfg: HwConfig, bins: SensitivityBins) -> HwConfig {
        let mut next = cfg;
        for &t in &self.tunables {
            let fraction = bins.bin_for(t).tunable_fraction();
            next = next.with_fraction_on(&self.grid, t, fraction);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::SensitivityPredictor;

    fn cg() -> CoarseGrain {
        CoarseGrain::new(SensitivityPredictor::paper_table3())
    }

    fn bins(cu: SensitivityBin, freq: SensitivityBin, bandwidth: SensitivityBin) -> SensitivityBins {
        SensitivityBins { cu, freq, bandwidth }
    }

    #[test]
    fn high_high_is_max_config() {
        let cfg = cg().apply(
            HwConfig::min_hd7970(),
            bins(SensitivityBin::High, SensitivityBin::High, SensitivityBin::High),
        );
        assert_eq!(cfg, HwConfig::max_hd7970());
    }

    #[test]
    fn low_low_is_near_min_config() {
        let cfg = cg().apply(
            HwConfig::max_hd7970(),
            bins(SensitivityBin::Low, SensitivityBin::Low, SensitivityBin::Low),
        );
        assert!(cfg.compute.cu_count() <= 20);
        assert!(cfg.compute.freq().value() <= 700);
        assert!(cfg.memory.bus_freq().value() <= 925);
    }

    #[test]
    fn bins_split_per_tunable() {
        // CU gated, frequency kept high, memory low — the BPT shape.
        let cfg = cg().apply(
            HwConfig::max_hd7970(),
            bins(SensitivityBin::Low, SensitivityBin::High, SensitivityBin::Med),
        );
        assert!(cfg.compute.cu_count() <= 20);
        assert_eq!(cfg.compute.freq().value(), 1000);
        assert_eq!(cfg.memory.bus_freq().value(), 1225);
    }

    #[test]
    fn restricted_tunables_leave_others_untouched() {
        let cg = CoarseGrain::with_tunables(
            SensitivityPredictor::paper_table3(),
            vec![Tunable::CuFreq],
        );
        let cfg = cg.apply(
            HwConfig::max_hd7970(),
            bins(SensitivityBin::Low, SensitivityBin::Low, SensitivityBin::Low),
        );
        assert_eq!(cfg.compute.cu_count(), 32); // unmanaged
        assert_eq!(cfg.memory.bus_freq().value(), 1375); // unmanaged
        assert!(cfg.compute.freq().value() < 1000); // managed
    }

    #[test]
    fn binning_round_trip() {
        let cg = cg();
        let b = cg.bins(Sensitivity {
            cu: 0.9,
            freq: 0.5,
            bandwidth: 0.1,
        });
        assert_eq!(b.cu, SensitivityBin::High);
        assert_eq!(b.freq, SensitivityBin::Med);
        assert_eq!(b.bandwidth, SensitivityBin::Low);
        assert_eq!(b.bin_for(Tunable::CuCount), SensitivityBin::High);
        assert_eq!(b.bin_for(Tunable::MemFreq), SensitivityBin::Low);
    }
}
