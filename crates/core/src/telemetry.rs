//! Decision-trace observability for the monitoring/decision runtime.
//!
//! The paper's claims (Figures 10–18) are statements about *governor
//! behaviour over time* — CG retunes, FG probes and reverts, residencies,
//! power splits — yet aggregate run reports cannot show *why* a decision was
//! made. This module adds a structured, zero-cost-when-disabled event trace:
//!
//! * [`TraceEvent`] — typed events covering kernel boundaries (with the full
//!   [`CounterSample`]), sensitivity predictions and bin assignments, CG
//!   retunes, every FG probe/accept/revert with the blamed tunable,
//!   revert-guard and known-bad-list hits, sweep-cache statistics, and 1 kHz
//!   power-trace samples;
//! * [`TraceHandle`] — a cheap cloneable handle over a bounded ring buffer
//!   ([`TraceBuffer`]). A disabled handle is a `None`: emitting through it is
//!   a single branch and the event is never even constructed, so traced and
//!   untraced runs execute identical decision logic;
//! * [`to_jsonl`]/[`from_jsonl`]/[`to_csv`] — line-oriented exporters whose
//!   output is byte-stable for deterministic models (golden-trace tests);
//! * [`TraceSummary`] — decision counts, residencies, and convergence
//!   iterations (Section 7 / Figure 18) derived purely from the event
//!   stream;
//! * [`config_sequence`]/[`matches_run`] — replay: the per-invocation
//!   configuration sequence recovered from the trace, checkable against a
//!   live [`RunReport`].
//!
//! The runtime emits kernel/power events, [`HarmoniaGovernor`] emits
//! CG/FG/guard events, and [`OracleGovernor`] emits sweep-cache statistics;
//! see `harmonia-experiments trace <app>` for the CLI entry point.
//!
//! [`HarmoniaGovernor`]: crate::governor::HarmoniaGovernor
//! [`OracleGovernor`]: crate::governor::OracleGovernor

use crate::binning::SensitivityBin;
use crate::metrics::{Residency, RunReport};
use harmonia_sim::CounterSample;
use harmonia_types::{ComputeConfig, HwConfig, MegaHertz, MemoryConfig, Seconds, Tunable};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Environment variable that globally enables runtime tracing
/// (`HARMONIA_TRACE=1`); used by the CI matrix leg that asserts traced and
/// untraced runs agree. Re-exported from [`harmonia_types::session`], where
/// the parsing lives.
pub use harmonia_types::session::TRACE_ENV;

/// Default ring-buffer capacity (events).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A hardware operating point in trace-friendly form: the three raw tunable
/// values. Compact in JSONL and trivially diffable, unlike the nested
/// [`HwConfig`] serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfigPoint {
    /// Active compute units.
    pub cu: u32,
    /// Compute clock in MHz.
    pub cu_mhz: u32,
    /// Memory bus clock in MHz.
    pub mem_mhz: u32,
}

impl From<HwConfig> for ConfigPoint {
    fn from(cfg: HwConfig) -> Self {
        Self {
            cu: cfg.compute.cu_count(),
            cu_mhz: cfg.compute.freq().value(),
            mem_mhz: cfg.memory.bus_freq().value(),
        }
    }
}

impl ConfigPoint {
    /// Reconstructs the validated [`HwConfig`]; `None` if the point is off
    /// the hardware grid (e.g. a hand-edited trace).
    pub fn to_hw(self) -> Option<HwConfig> {
        Some(HwConfig::new(
            ComputeConfig::new(self.cu, MegaHertz(self.cu_mhz)).ok()?,
            MemoryConfig::new(MegaHertz(self.mem_mhz)).ok()?,
        ))
    }
}

/// One structured event of the decision trace.
///
/// Externally tagged on serialization: `{"KernelStart":{...}}` — one JSON
/// object per line in the JSONL export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A runtime run began.
    RunStart {
        /// Application name.
        app: String,
        /// Governor name.
        governor: String,
    },
    /// A kernel invocation is about to run at `cfg` (the governor's
    /// decision for this invocation).
    KernelStart {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Decided configuration.
        cfg: ConfigPoint,
    },
    /// A kernel invocation finished; carries the full counter sample the
    /// monitoring block observed.
    KernelEnd {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Configuration the invocation ran at.
        cfg: ConfigPoint,
        /// Execution time in seconds.
        time_s: f64,
        /// Average card power over the invocation (W).
        card_w: f64,
        /// Average GPU chip power (W).
        gpu_w: f64,
        /// Average memory power (W).
        mem_w: f64,
        /// The performance counters produced by the invocation.
        counters: CounterSample,
    },
    /// The timing model detected steady state and extrapolated the tail of
    /// the invocation instead of stepping it (adaptive fidelity; see
    /// `harmonia_sim::event::FastForwardPolicy`). Emitted right after the
    /// invocation's `KernelEnd`.
    FastForward {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Waves played out event by event before convergence.
        stepped_waves: u64,
        /// Waves extrapolated at the converged steady-state rate.
        fast_forwarded_waves: u64,
    },
    /// The CG block predicted sensitivities and binned them.
    Prediction {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Predicted CU-count sensitivity.
        cu: f64,
        /// Predicted CU-frequency sensitivity.
        freq: f64,
        /// Predicted memory-bandwidth sensitivity.
        bandwidth: f64,
        /// Bin assigned to the CU-count sensitivity.
        cu_bin: SensitivityBin,
        /// Bin assigned to the CU-frequency sensitivity.
        freq_bin: SensitivityBin,
        /// Bin assigned to the bandwidth sensitivity.
        bw_bin: SensitivityBin,
    },
    /// A coarse-grain retune: the bins changed and CG jumped the tunables.
    CgRetune {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Configuration before the jump.
        from: ConfigPoint,
        /// Configuration chosen by the jump.
        to: ConfigPoint,
        /// Bin driving the CU count.
        cu_bin: SensitivityBin,
        /// Bin driving the CU frequency.
        freq_bin: SensitivityBin,
        /// Bin driving the memory frequency.
        bw_bin: SensitivityBin,
    },
    /// The revert guard fired: a sensitivity shift right after a downward
    /// actuation was judged an artifact and the previous configuration was
    /// restored.
    RevertGuard {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// The (perturbing) configuration being abandoned.
        from: ConfigPoint,
        /// The restored pre-change configuration.
        to: ConfigPoint,
    },
    /// The FG loop probed: a decrement (or climb-continuation) move.
    FgProbe {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Configuration before the move.
        from: ConfigPoint,
        /// Configuration after the move.
        to: ConfigPoint,
        /// Tunables stepped down by this move.
        moved_down: Vec<Tunable>,
        /// Tunables stepped up by this move (recovery climbs).
        moved_up: Vec<Tunable>,
    },
    /// The FG loop accepted the previous move: throughput was preserved at
    /// the probed configuration.
    FgAccept {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// The accepted configuration.
        cfg: ConfigPoint,
        /// The throughput proxy observed there (VALU instruction rate).
        rate: f64,
    },
    /// The FG loop reverted: throughput degraded, the blamed tunables are
    /// stepped back up.
    FgRevert {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// The degrading configuration.
        from: ConfigPoint,
        /// The configuration after the increment move.
        to: ConfigPoint,
        /// The tunables blamed for the degradation (empty when the
        /// degradation had no probe to blame, e.g. a CG misprediction).
        blamed: Vec<Tunable>,
    },
    /// The FG loop converged: no further moves until the next CG retune.
    FgConverged {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// The best (lowest-power, performance-preserving) state settled on.
        cfg: ConfigPoint,
    },
    /// A downward probe was skipped because the target configuration is on
    /// the known-bad list for the current phase regime.
    KnownBadSkip {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// The configuration that was not re-probed.
        cfg: ConfigPoint,
    },
    /// A power-cap decorator clamped the inner governor's decision.
    CapClamp {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// What the inner policy wanted.
        wanted: ConfigPoint,
        /// What the cap allowed.
        granted: ConfigPoint,
    },
    /// The reactive PowerTune governor shifted DPM state.
    DpmShift {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Compute clock before the shift (MHz).
        from_mhz: u32,
        /// Compute clock after the shift (MHz).
        to_mhz: u32,
    },
    /// The runtime's fault shim perturbed actuation: the governor decided
    /// `wanted` but the invocation actually ran at `actual`.
    FaultInjected {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Fault-kind label (see `harmonia_sim::faults::FaultKind::label`).
        kind: String,
        /// The configuration the governor decided on.
        wanted: ConfigPoint,
        /// The configuration the hardware actually ran at.
        actual: ConfigPoint,
    },
    /// The counter sanitizer rejected a field value and substituted a
    /// trusted one.
    SanitizerReject {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// The rejected counter field.
        field: String,
        /// The rejected raw value (formatted, so non-finite values survive
        /// the JSONL round trip).
        value: String,
        /// The substituted value (always finite).
        substitute: f64,
    },
    /// A governor watchdog judged this observation interval anomalous.
    FaultDetected {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// What looked wrong.
        what: String,
    },
    /// A watchdog's anomaly streak crossed its threshold: the governor fell
    /// back to the safe PowerTune-equivalent state.
    FallbackEngaged {
        /// Kernel whose observation tripped the watchdog.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// The safe state decisions are pinned to.
        safe: ConfigPoint,
        /// Intervals the fallback will hold before re-engagement is tried.
        hold: u64,
    },
    /// The watchdog's hold expired: normal governing re-engages (with the
    /// next hold doubled, up to the backoff cap).
    FallbackReleased {
        /// Kernel observed when the hold expired.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
    },
    /// The degradation ladder moved between rungs (demotion on sustained
    /// anomalies, promotion after a clean hold).
    RungShift {
        /// Kernel whose observation drove the shift.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Rung label before the shift (see `governor::Rung::label`).
        from: String,
        /// Rung label after the shift.
        to: String,
        /// Clean intervals required at the new rung before promotion is
        /// tried (the backoff hold); zero on promotions.
        hold: u64,
    },
    /// One attempt of the runtime's retrying actuator shim: the requested
    /// DPM transition was perturbed and the shim re-issued (or gave up on)
    /// the request.
    ActuationAttempt {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Attempt ordinal (0 = the original request).
        attempt: u32,
        /// Fault-kind label that perturbed this attempt.
        kind: String,
        /// The configuration the governor decided on.
        wanted: ConfigPoint,
        /// The configuration this attempt landed on.
        actual: ConfigPoint,
    },
    /// The retrying actuator shim resolved one invocation's actuation with
    /// a terminal outcome (see `harmonia_sim::faults::ActuationOutcome`).
    ActuationResolved {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Outcome label (`applied` / `retried` / `timed-out` /
        /// `rolled-back`).
        outcome: String,
        /// Total attempts consumed (1 = clean first try).
        attempts: u32,
        /// The configuration the governor decided on.
        wanted: ConfigPoint,
        /// The configuration the invocation actually ran at.
        actual: ConfigPoint,
    },
    /// The counter sanitizer escalated: it served held (last-good) samples
    /// for too many consecutive invocations and stopped masking, so the
    /// watchdog sees the failed reads.
    SanitizerEscalated {
        /// Kernel name.
        kernel: String,
        /// Outer application iteration.
        iteration: u64,
        /// Consecutive wholesale holds served before escalation.
        held: u32,
    },
    /// Sweep-engine cache statistics, emitted after an exhaustive sweep.
    CacheStats {
        /// Lookups served from memory.
        hits: u64,
        /// Lookups that ran the underlying model.
        misses: u64,
        /// Distinct simulation points stored.
        entries: u64,
        /// Entries per cache shard (occupancy distribution).
        shards: Vec<u64>,
    },
    /// One 1 kHz sample of the virtual DAQ power trace.
    PowerSample {
        /// Timestamp since run start (s).
        at_s: f64,
        /// Card power (W).
        card_w: f64,
        /// GPU chip power (W).
        gpu_w: f64,
        /// Memory power (W).
        mem_w: f64,
    },
    /// The runtime run finished.
    RunEnd {
        /// Application name.
        app: String,
        /// Governor name.
        governor: String,
        /// Total execution time (s).
        total_time_s: f64,
        /// Total card energy (J).
        card_energy_j: f64,
    },
}

impl TraceEvent {
    /// Short machine-readable event kind (the serialization tag).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "RunStart",
            TraceEvent::KernelStart { .. } => "KernelStart",
            TraceEvent::KernelEnd { .. } => "KernelEnd",
            TraceEvent::FastForward { .. } => "FastForward",
            TraceEvent::Prediction { .. } => "Prediction",
            TraceEvent::CgRetune { .. } => "CgRetune",
            TraceEvent::RevertGuard { .. } => "RevertGuard",
            TraceEvent::FgProbe { .. } => "FgProbe",
            TraceEvent::FgAccept { .. } => "FgAccept",
            TraceEvent::FgRevert { .. } => "FgRevert",
            TraceEvent::FgConverged { .. } => "FgConverged",
            TraceEvent::KnownBadSkip { .. } => "KnownBadSkip",
            TraceEvent::CapClamp { .. } => "CapClamp",
            TraceEvent::DpmShift { .. } => "DpmShift",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::SanitizerReject { .. } => "SanitizerReject",
            TraceEvent::FaultDetected { .. } => "FaultDetected",
            TraceEvent::FallbackEngaged { .. } => "FallbackEngaged",
            TraceEvent::FallbackReleased { .. } => "FallbackReleased",
            TraceEvent::RungShift { .. } => "RungShift",
            TraceEvent::ActuationAttempt { .. } => "ActuationAttempt",
            TraceEvent::ActuationResolved { .. } => "ActuationResolved",
            TraceEvent::SanitizerEscalated { .. } => "SanitizerEscalated",
            TraceEvent::CacheStats { .. } => "CacheStats",
            TraceEvent::PowerSample { .. } => "PowerSample",
            TraceEvent::RunEnd { .. } => "RunEnd",
        }
    }

    /// The kernel this event concerns, when it concerns one.
    pub fn kernel(&self) -> Option<&str> {
        match self {
            TraceEvent::KernelStart { kernel, .. }
            | TraceEvent::KernelEnd { kernel, .. }
            | TraceEvent::FastForward { kernel, .. }
            | TraceEvent::Prediction { kernel, .. }
            | TraceEvent::CgRetune { kernel, .. }
            | TraceEvent::RevertGuard { kernel, .. }
            | TraceEvent::FgProbe { kernel, .. }
            | TraceEvent::FgAccept { kernel, .. }
            | TraceEvent::FgRevert { kernel, .. }
            | TraceEvent::FgConverged { kernel, .. }
            | TraceEvent::KnownBadSkip { kernel, .. }
            | TraceEvent::CapClamp { kernel, .. }
            | TraceEvent::DpmShift { kernel, .. }
            | TraceEvent::FaultInjected { kernel, .. }
            | TraceEvent::SanitizerReject { kernel, .. }
            | TraceEvent::FaultDetected { kernel, .. }
            | TraceEvent::FallbackEngaged { kernel, .. }
            | TraceEvent::FallbackReleased { kernel, .. }
            | TraceEvent::RungShift { kernel, .. }
            | TraceEvent::ActuationAttempt { kernel, .. }
            | TraceEvent::ActuationResolved { kernel, .. }
            | TraceEvent::SanitizerEscalated { kernel, .. } => Some(kernel),
            _ => None,
        }
    }

    /// The application iteration this event concerns, when it concerns one.
    pub fn iteration(&self) -> Option<u64> {
        match self {
            TraceEvent::KernelStart { iteration, .. }
            | TraceEvent::KernelEnd { iteration, .. }
            | TraceEvent::FastForward { iteration, .. }
            | TraceEvent::Prediction { iteration, .. }
            | TraceEvent::CgRetune { iteration, .. }
            | TraceEvent::RevertGuard { iteration, .. }
            | TraceEvent::FgProbe { iteration, .. }
            | TraceEvent::FgAccept { iteration, .. }
            | TraceEvent::FgRevert { iteration, .. }
            | TraceEvent::FgConverged { iteration, .. }
            | TraceEvent::KnownBadSkip { iteration, .. }
            | TraceEvent::CapClamp { iteration, .. }
            | TraceEvent::DpmShift { iteration, .. }
            | TraceEvent::FaultInjected { iteration, .. }
            | TraceEvent::SanitizerReject { iteration, .. }
            | TraceEvent::FaultDetected { iteration, .. }
            | TraceEvent::FallbackEngaged { iteration, .. }
            | TraceEvent::FallbackReleased { iteration, .. }
            | TraceEvent::RungShift { iteration, .. }
            | TraceEvent::ActuationAttempt { iteration, .. }
            | TraceEvent::ActuationResolved { iteration, .. }
            | TraceEvent::SanitizerEscalated { iteration, .. } => Some(*iteration),
            _ => None,
        }
    }
}

/// A bounded ring buffer of trace events. When full, the oldest event is
/// dropped and counted — decision traces keep their most recent window.
#[derive(Debug)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    recorded: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            recorded: 0,
        }
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.recorded += 1;
        self.events.push_back(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (buffered + dropped). A saturated ring under
    /// chaos runs shows up as `recorded > len`, not silent truncation.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.iter().cloned().collect()
    }
}

/// A cheap, cloneable, thread-safe handle to a shared [`TraceBuffer`].
///
/// The disabled handle carries no buffer at all: [`TraceHandle::emit`]
/// reduces to one `Option` branch and the event-constructing closure is
/// never called, so instrumented code paths cost nothing measurable when
/// tracing is off.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Mutex<TraceBuffer>>>,
    /// Extra buffers every emitted event is copied into, produced by
    /// [`TraceHandle::tee`]. Empty on every handle except fanout ones, so
    /// the single-buffer fast path is untouched.
    taps: Vec<Arc<Mutex<TraceBuffer>>>,
}

impl TraceHandle {
    /// A handle that records nothing (the zero-cost default).
    pub fn disabled() -> Self {
        Self {
            inner: None,
            taps: Vec::new(),
        }
    }

    /// An enabled handle over a fresh buffer of [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::bounded(DEFAULT_CAPACITY)
    }

    /// An enabled handle over a fresh buffer of `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(TraceBuffer::new(capacity)))),
            taps: Vec::new(),
        }
    }

    /// An enabled handle when [`TRACE_ENV`] is set to `1`/`true`, otherwise
    /// disabled. Lets a CI leg run the entire test suite traced.
    pub fn from_env() -> Self {
        if harmonia_types::Session::from_env().trace() {
            Self::new()
        } else {
            Self::disabled()
        }
    }

    /// A handle that records into this handle's buffer **and** into `tap`'s
    /// (used by [`TraceLayer`](crate::governor::TraceLayer) to observe a
    /// governor's events without stealing them from the primary sink).
    /// Disabled handles and taps contribute no buffer; teeing two disabled
    /// handles yields a disabled handle.
    pub fn tee(&self, tap: &TraceHandle) -> TraceHandle {
        let mut taps = self.taps.clone();
        for buffer in tap.inner.iter().chain(tap.taps.iter()) {
            let mut known = self.inner.iter().chain(taps.iter());
            if !known.any(|t| Arc::ptr_eq(t, buffer)) {
                taps.push(Arc::clone(buffer));
            }
        }
        TraceHandle {
            inner: self.inner.clone(),
            taps,
        }
    }

    /// Whether events are being recorded (into the primary buffer or any
    /// tap).
    pub fn enabled(&self) -> bool {
        self.inner.is_some() || !self.taps.is_empty()
    }

    /// Records the event produced by `f` (not called when disabled).
    #[inline]
    pub fn emit<F: FnOnce() -> TraceEvent>(&self, f: F) {
        if !self.enabled() {
            return;
        }
        let ev = f();
        if let Some((last, rest)) = self.taps.split_last() {
            if let Some(buffer) = &self.inner {
                buffer.lock().expect("trace buffer poisoned").push(ev.clone());
            }
            for tap in rest {
                tap.lock().expect("trace buffer poisoned").push(ev.clone());
            }
            last.lock().expect("trace buffer poisoned").push(ev);
        } else if let Some(buffer) = &self.inner {
            buffer.lock().expect("trace buffer poisoned").push(ev);
        }
    }

    /// A snapshot of the buffered events, oldest first (empty when
    /// disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |b| {
            b.lock().expect("trace buffer poisoned").snapshot()
        })
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |b| b.lock().expect("trace buffer poisoned").len())
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |b| b.lock().expect("trace buffer poisoned").dropped())
    }

    /// Total events ever recorded through this handle's buffer.
    pub fn recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |b| b.lock().expect("trace buffer poisoned").recorded())
    }

    /// Summarizes the buffered events (see [`summarize`]).
    pub fn summary(&self) -> TraceSummary {
        let mut s = summarize(&self.events());
        s.dropped = self.dropped();
        s.recorded = self.recorded();
        s
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Serializes events as JSONL: one compact JSON object per line. Output is
/// byte-stable for identical event streams (struct-order keys, shortest
/// round-trip float formatting).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("trace events always serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL decision trace produced by [`to_jsonl`].
///
/// # Errors
///
/// Returns the offending line number and parser message on malformed input.
pub fn from_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: TraceEvent = serde_json::from_str(line)
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Flattens events into a CSV with the common columns
/// `kind,kernel,iteration,cu,cu_mhz,mem_mhz,detail` (decision events carry
/// their destination configuration; `detail` holds kind-specific values).
pub fn to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("kind,kernel,iteration,cu,cu_mhz,mem_mhz,detail\n");
    for ev in events {
        let kernel = ev.kernel().unwrap_or("");
        let iteration = ev
            .iteration()
            .map_or(String::new(), |i| i.to_string());
        let (cfg, detail): (Option<ConfigPoint>, String) = match ev {
            TraceEvent::RunStart { app, governor } => {
                (None, format!("app={app} governor={governor}"))
            }
            TraceEvent::KernelStart { cfg, .. } => (Some(*cfg), String::new()),
            TraceEvent::KernelEnd { cfg, time_s, card_w, .. } => {
                (Some(*cfg), format!("time_s={time_s} card_w={card_w}"))
            }
            TraceEvent::FastForward { stepped_waves, fast_forwarded_waves, .. } => (
                None,
                format!("stepped={stepped_waves} fast_forwarded={fast_forwarded_waves}"),
            ),
            TraceEvent::Prediction { cu, freq, bandwidth, cu_bin, freq_bin, bw_bin, .. } => (
                None,
                format!(
                    "s=({cu:.3}/{freq:.3}/{bandwidth:.3}) bins=({cu_bin}/{freq_bin}/{bw_bin})"
                ),
            ),
            TraceEvent::CgRetune { from, to, .. }
            | TraceEvent::RevertGuard { from, to, .. }
            | TraceEvent::FgProbe { from, to, .. }
            | TraceEvent::FgRevert { from, to, .. } => (
                Some(*to),
                format!("from={}/{}/{}", from.cu, from.cu_mhz, from.mem_mhz),
            ),
            TraceEvent::FgAccept { cfg, rate, .. } => (Some(*cfg), format!("rate={rate}")),
            TraceEvent::FgConverged { cfg, .. } | TraceEvent::KnownBadSkip { cfg, .. } => {
                (Some(*cfg), String::new())
            }
            TraceEvent::CapClamp { wanted, granted, .. } => (
                Some(*granted),
                format!("wanted={}/{}/{}", wanted.cu, wanted.cu_mhz, wanted.mem_mhz),
            ),
            TraceEvent::DpmShift { from_mhz, to_mhz, .. } => {
                (None, format!("{from_mhz}->{to_mhz}"))
            }
            TraceEvent::FaultInjected { kind, wanted, actual, .. } => (
                Some(*actual),
                format!(
                    "kind={kind} wanted={}/{}/{}",
                    wanted.cu, wanted.cu_mhz, wanted.mem_mhz
                ),
            ),
            TraceEvent::SanitizerReject { field, value, substitute, .. } => {
                (None, format!("field={field} value={value} substitute={substitute}"))
            }
            TraceEvent::FaultDetected { what, .. } => (None, format!("what={what}")),
            TraceEvent::FallbackEngaged { safe, hold, .. } => {
                (Some(*safe), format!("hold={hold}"))
            }
            TraceEvent::FallbackReleased { .. } => (None, String::new()),
            TraceEvent::RungShift { from, to, hold, .. } => {
                (None, format!("from={from} to={to} hold={hold}"))
            }
            TraceEvent::ActuationAttempt { attempt, kind, wanted, actual, .. } => (
                Some(*actual),
                format!(
                    "attempt={attempt} kind={kind} wanted={}/{}/{}",
                    wanted.cu, wanted.cu_mhz, wanted.mem_mhz
                ),
            ),
            TraceEvent::ActuationResolved { outcome, attempts, wanted, actual, .. } => (
                Some(*actual),
                format!(
                    "outcome={outcome} attempts={attempts} wanted={}/{}/{}",
                    wanted.cu, wanted.cu_mhz, wanted.mem_mhz
                ),
            ),
            TraceEvent::SanitizerEscalated { held, .. } => {
                (None, format!("held={held}"))
            }
            TraceEvent::CacheStats { hits, misses, entries, .. } => {
                (None, format!("hits={hits} misses={misses} entries={entries}"))
            }
            TraceEvent::PowerSample { at_s, card_w, gpu_w, mem_w } => {
                (None, format!("at_s={at_s} card={card_w} gpu={gpu_w} mem={mem_w}"))
            }
            TraceEvent::RunEnd { total_time_s, card_energy_j, .. } => {
                (None, format!("time_s={total_time_s} energy_j={card_energy_j}"))
            }
        };
        let (cu, cu_mhz, mem_mhz) = cfg.map_or((String::new(), String::new(), String::new()), |c| {
            (c.cu.to_string(), c.cu_mhz.to_string(), c.mem_mhz.to_string())
        });
        out.push_str(&format!(
            "{},{kernel},{iteration},{cu},{cu_mhz},{mem_mhz},{detail}\n",
            ev.kind()
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// The per-invocation configuration sequence recorded in the trace, in
/// execution order: `(kernel, iteration, configuration)` from every
/// [`TraceEvent::KernelStart`].
pub fn config_sequence(events: &[TraceEvent]) -> Vec<(String, u64, ConfigPoint)> {
    events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::KernelStart { kernel, iteration, cfg } => {
                Some((kernel.clone(), *iteration, *cfg))
            }
            _ => None,
        })
        .collect()
}

/// Whether replaying the trace reproduces the governor's exact configuration
/// sequence as recorded independently by the run report's invocation trace.
pub fn matches_run(events: &[TraceEvent], report: &RunReport) -> bool {
    let replayed = config_sequence(events);
    if replayed.len() != report.trace.len() {
        return false;
    }
    replayed.iter().zip(&report.trace).all(|(r, live)| {
        r.0 == *live.kernel && r.1 == live.iteration && r.2 == ConfigPoint::from(live.cfg)
    })
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

/// Aggregate view of a decision trace: decision counts, power-state
/// residency, and convergence (Section 7 / Figure 18).
#[derive(Debug, Clone, Default, Serialize)]
pub struct TraceSummary {
    /// Events summarized.
    pub events: u64,
    /// Events evicted from the ring buffer before the summary.
    pub dropped: u64,
    /// Total events ever recorded (buffered + dropped); zero when the
    /// summary was built from a raw slice rather than a handle.
    pub recorded: u64,
    /// Kernel invocations (KernelEnd events).
    pub invocations: u64,
    /// Invocations whose timing model fast-forwarded part of the run.
    pub fast_forwards: u64,
    /// Sensitivity predictions made.
    pub predictions: u64,
    /// Coarse-grain retunes.
    pub cg_retunes: u64,
    /// Revert-guard activations.
    pub revert_guards: u64,
    /// FG probe moves.
    pub fg_probes: u64,
    /// FG accepts (throughput preserved at a probed point).
    pub fg_accepts: u64,
    /// FG reverts (blamed increments).
    pub fg_reverts: u64,
    /// FG convergence events.
    pub fg_converged: u64,
    /// Downward probes skipped by the known-bad list.
    pub known_bad_skips: u64,
    /// Power-cap clamps.
    pub cap_clamps: u64,
    /// DPM state shifts.
    pub dpm_shifts: u64,
    /// Actuation faults injected by the runtime's fault shim.
    pub faults_injected: u64,
    /// Counter fields rejected (and substituted) by the sanitizer.
    pub sanitizer_rejects: u64,
    /// Anomalous intervals flagged by governor watchdogs.
    pub faults_detected: u64,
    /// Safe-state fallback engagements.
    pub fallbacks_engaged: u64,
    /// Safe-state fallback releases.
    pub fallbacks_released: u64,
    /// Degradation-ladder rung shifts (demotions + promotions).
    pub rung_shifts: u64,
    /// Individual retry attempts made by the retrying actuator shim.
    pub actuation_attempts: u64,
    /// Invocations whose actuation the retrying shim resolved with a
    /// non-clean outcome (retried / timed out / rolled back).
    pub actuations_resolved: u64,
    /// Sanitizer hold-bound escalations (stale-sample masking stopped).
    pub sanitizer_escalations: u64,
    /// Kernel invocations completed while a fallback was engaged
    /// (safe-state residency in invocation counts).
    pub fallback_invocations: u64,
    /// Virtual-DAQ power samples.
    pub power_samples: u64,
    /// Last reported sweep-cache hits.
    pub cache_hits: u64,
    /// Last reported sweep-cache misses.
    pub cache_misses: u64,
    /// Last reported sweep-cache entries.
    pub cache_entries: u64,
    /// Number of invocation-to-invocation configuration changes (per
    /// kernel).
    pub config_changes: u64,
    /// Last application iteration at which any kernel's configuration still
    /// changed — the convergence metric of Figure 18.
    pub settle_iteration: u64,
    /// Time-weighted power-state residency over the traced run (from
    /// KernelEnd events), the series behind Figures 15–16.
    pub residency: Residency,
}

/// Builds a [`TraceSummary`] from an event stream.
pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
    let mut s = TraceSummary {
        events: events.len() as u64,
        ..TraceSummary::default()
    };
    let mut last_cfg: HashMap<&str, ConfigPoint> = HashMap::new();
    let mut fallback_active = false;
    for ev in events {
        match ev {
            TraceEvent::KernelStart { kernel, iteration, cfg } => {
                if let Some(prev) = last_cfg.insert(kernel, *cfg) {
                    if prev != *cfg {
                        s.config_changes += 1;
                        s.settle_iteration = s.settle_iteration.max(*iteration);
                    }
                }
            }
            TraceEvent::KernelEnd { cfg, time_s, .. } => {
                s.invocations += 1;
                if fallback_active {
                    s.fallback_invocations += 1;
                }
                if let Some(hw) = cfg.to_hw() {
                    s.residency.record(hw, Seconds(*time_s));
                }
            }
            TraceEvent::FastForward { .. } => s.fast_forwards += 1,
            TraceEvent::Prediction { .. } => s.predictions += 1,
            TraceEvent::CgRetune { .. } => s.cg_retunes += 1,
            TraceEvent::RevertGuard { .. } => s.revert_guards += 1,
            TraceEvent::FgProbe { .. } => s.fg_probes += 1,
            TraceEvent::FgAccept { .. } => s.fg_accepts += 1,
            TraceEvent::FgRevert { .. } => s.fg_reverts += 1,
            TraceEvent::FgConverged { .. } => s.fg_converged += 1,
            TraceEvent::KnownBadSkip { .. } => s.known_bad_skips += 1,
            TraceEvent::CapClamp { .. } => s.cap_clamps += 1,
            TraceEvent::DpmShift { .. } => s.dpm_shifts += 1,
            TraceEvent::FaultInjected { .. } => s.faults_injected += 1,
            TraceEvent::SanitizerReject { .. } => s.sanitizer_rejects += 1,
            TraceEvent::FaultDetected { .. } => s.faults_detected += 1,
            TraceEvent::FallbackEngaged { .. } => {
                s.fallbacks_engaged += 1;
                fallback_active = true;
            }
            TraceEvent::FallbackReleased { .. } => {
                s.fallbacks_released += 1;
                fallback_active = false;
            }
            TraceEvent::RungShift { .. } => s.rung_shifts += 1,
            TraceEvent::ActuationAttempt { .. } => s.actuation_attempts += 1,
            TraceEvent::ActuationResolved { .. } => s.actuations_resolved += 1,
            TraceEvent::SanitizerEscalated { .. } => s.sanitizer_escalations += 1,
            TraceEvent::PowerSample { .. } => s.power_samples += 1,
            TraceEvent::CacheStats { hits, misses, entries, .. } => {
                s.cache_hits = *hits;
                s.cache_misses = *misses;
                s.cache_entries = *entries;
            }
            TraceEvent::RunStart { .. } | TraceEvent::RunEnd { .. } => {}
        }
    }
    s
}

/// Residency accumulated from the trace over an application-iteration
/// window `lo..hi` — the windowed series of Figure 15.
pub fn residency_between(events: &[TraceEvent], lo: u64, hi: u64) -> Residency {
    let mut residency = Residency::new();
    for ev in events {
        if let TraceEvent::KernelEnd { iteration, cfg, time_s, .. } = ev {
            if (lo..hi).contains(iteration) {
                if let Some(hw) = cfg.to_hw() {
                    residency.record(hw, Seconds(*time_s));
                }
            }
        }
    }
    residency
}

/// The Figure 18 convergence metric: the last application iteration at
/// which any kernel's decided configuration still changed.
pub fn settle_iteration(events: &[TraceEvent]) -> u64 {
    summarize(events).settle_iteration
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(cu: u32, f: u32, m: u32) -> ConfigPoint {
        ConfigPoint { cu, cu_mhz: f, mem_mhz: m }
    }

    fn start(kernel: &str, iteration: u64, cfg: ConfigPoint) -> TraceEvent {
        TraceEvent::KernelStart {
            kernel: kernel.into(),
            iteration,
            cfg,
        }
    }

    fn end(kernel: &str, iteration: u64, cfg: ConfigPoint, time_s: f64) -> TraceEvent {
        TraceEvent::KernelEnd {
            kernel: kernel.into(),
            iteration,
            cfg,
            time_s,
            card_w: 200.0,
            gpu_w: 140.0,
            mem_w: 40.0,
            counters: CounterSample::default(),
        }
    }

    #[test]
    fn disabled_handle_records_nothing_and_never_builds_events() {
        let h = TraceHandle::disabled();
        assert!(!h.enabled());
        let mut called = false;
        h.emit(|| {
            called = true;
            TraceEvent::RunStart {
                app: "a".into(),
                governor: "g".into(),
            }
        });
        assert!(!called, "closure must not run when tracing is disabled");
        assert!(h.events().is_empty());
        assert!(h.is_empty());
    }

    #[test]
    fn enabled_handle_buffers_in_order() {
        let h = TraceHandle::new();
        assert!(h.enabled());
        h.emit(|| start("k", 0, pt(32, 1000, 1375)));
        h.emit(|| start("k", 1, pt(32, 1000, 1225)));
        let evs = h.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(h.len(), 2);
        assert_eq!(evs[0].iteration(), Some(0));
        assert_eq!(evs[1].iteration(), Some(1));
    }

    #[test]
    fn ring_buffer_drops_oldest_at_capacity() {
        let h = TraceHandle::bounded(2);
        for i in 0..5 {
            h.emit(|| start("k", i, pt(32, 1000, 1375)));
        }
        let evs = h.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(h.dropped(), 3);
        assert_eq!(evs[0].iteration(), Some(3));
        assert_eq!(evs[1].iteration(), Some(4));
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = TraceHandle::new();
        let b = a.clone();
        b.emit(|| start("k", 0, pt(32, 1000, 1375)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn config_point_round_trips() {
        let cfg = HwConfig::max_hd7970();
        let p = ConfigPoint::from(cfg);
        assert_eq!(p, pt(32, 1000, 1375));
        assert_eq!(p.to_hw(), Some(cfg));
        assert_eq!(pt(33, 1000, 1375).to_hw(), None, "off-grid points reject");
    }

    #[test]
    fn jsonl_round_trips_and_is_line_oriented() {
        let events = vec![
            TraceEvent::RunStart {
                app: "Graph500".into(),
                governor: "harmonia".into(),
            },
            start("k", 0, pt(32, 1000, 1375)),
            end("k", 0, pt(32, 1000, 1375), 0.001),
            TraceEvent::CacheStats {
                hits: 10,
                misses: 2,
                entries: 2,
                shards: vec![1, 1],
            },
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = from_jsonl(&text).expect("round trip");
        assert_eq!(back, events);
    }

    #[test]
    fn jsonl_is_byte_stable() {
        let ev = vec![end("k", 3, pt(16, 700, 925), 0.0125)];
        assert_eq!(to_jsonl(&ev), to_jsonl(&ev.clone()));
    }

    #[test]
    fn from_jsonl_reports_bad_lines() {
        let err = from_jsonl("{\"Nope\":{}}\n").unwrap_err();
        assert!(err.contains("line 1"), "got: {err}");
    }

    #[test]
    fn csv_has_one_row_per_event_plus_header() {
        let events = vec![
            start("k", 0, pt(32, 1000, 1375)),
            TraceEvent::FgProbe {
                kernel: "k".into(),
                iteration: 1,
                from: pt(32, 1000, 1375),
                to: pt(28, 900, 1225),
                moved_down: vec![Tunable::CuCount, Tunable::CuFreq, Tunable::MemFreq],
                moved_up: vec![],
            },
        ];
        let csv = to_csv(&events);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(2).unwrap().starts_with("FgProbe,k,1,28,900,1225"));
    }

    #[test]
    fn summary_counts_and_residency() {
        let events = vec![
            start("k", 0, pt(32, 1000, 1375)),
            end("k", 0, pt(32, 1000, 1375), 1.0),
            TraceEvent::Prediction {
                kernel: "k".into(),
                iteration: 0,
                cu: 0.9,
                freq: 0.5,
                bandwidth: 0.1,
                cu_bin: SensitivityBin::High,
                freq_bin: SensitivityBin::Med,
                bw_bin: SensitivityBin::Low,
            },
            TraceEvent::CgRetune {
                kernel: "k".into(),
                iteration: 0,
                from: pt(32, 1000, 1375),
                to: pt(32, 1000, 775),
                cu_bin: SensitivityBin::High,
                freq_bin: SensitivityBin::Med,
                bw_bin: SensitivityBin::Low,
            },
            start("k", 1, pt(32, 1000, 775)),
            end("k", 1, pt(32, 1000, 775), 3.0),
        ];
        let s = summarize(&events);
        assert_eq!(s.invocations, 2);
        assert_eq!(s.predictions, 1);
        assert_eq!(s.cg_retunes, 1);
        assert_eq!(s.config_changes, 1);
        assert_eq!(s.settle_iteration, 1);
        assert!((s.residency.fraction(Tunable::MemFreq, 775) - 0.75).abs() < 1e-12);
        assert!((s.residency.fraction(Tunable::MemFreq, 1375) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn windowed_residency_selects_iterations() {
        let events = vec![
            end("k", 0, pt(32, 1000, 1375), 1.0),
            end("k", 1, pt(32, 1000, 775), 1.0),
            end("k", 2, pt(32, 1000, 775), 1.0),
        ];
        let early = residency_between(&events, 0, 1);
        assert!((early.fraction(Tunable::MemFreq, 1375) - 1.0).abs() < 1e-12);
        let late = residency_between(&events, 1, 3);
        assert!((late.fraction(Tunable::MemFreq, 775) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replay_matches_config_sequence() {
        let events = vec![
            start("a", 0, pt(32, 1000, 1375)),
            start("b", 0, pt(32, 1000, 775)),
            start("a", 1, pt(32, 900, 1375)),
        ];
        let seq = config_sequence(&events);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[2], ("a".to_string(), 1, pt(32, 900, 1375)));
    }

    #[test]
    fn from_env_respects_variable() {
        // The handle is enabled exactly when the session parser says the
        // trace knob is on (Session owns the HARMONIA_* semantics).
        assert_eq!(
            TraceHandle::from_env().enabled(),
            harmonia_types::Session::from_env().trace()
        );
    }

    #[test]
    fn tee_fans_events_out_to_both_buffers() {
        let primary = TraceHandle::new();
        let tap = TraceHandle::new();
        let fanout = primary.tee(&tap);
        assert!(fanout.enabled());
        fanout.emit(|| TraceEvent::RunStart {
            app: "a".into(),
            governor: "g".into(),
        });
        assert_eq!(primary.len(), 1);
        assert_eq!(tap.len(), 1);
        assert_eq!(primary.events(), tap.events());
        // Emitting through the originals does not cross over.
        primary.emit(|| TraceEvent::RunStart {
            app: "b".into(),
            governor: "g".into(),
        });
        assert_eq!(primary.len(), 2);
        assert_eq!(tap.len(), 1);
    }

    #[test]
    fn tee_over_disabled_primary_still_records_into_tap() {
        let tap = TraceHandle::new();
        let fanout = TraceHandle::disabled().tee(&tap);
        assert!(fanout.enabled());
        fanout.emit(|| TraceEvent::RunStart {
            app: "a".into(),
            governor: "g".into(),
        });
        assert_eq!(tap.len(), 1);
        // Two disabled handles tee into a handle that records nothing.
        let dead = TraceHandle::disabled().tee(&TraceHandle::disabled());
        assert!(!dead.enabled());
    }

    #[test]
    fn tee_deduplicates_shared_buffers() {
        let primary = TraceHandle::new();
        // Teeing a clone of the same handle must not double-record.
        let fanout = primary.tee(&primary.clone());
        fanout.emit(|| TraceEvent::RunStart {
            app: "a".into(),
            governor: "g".into(),
        });
        assert_eq!(primary.len(), 1);
    }
}
