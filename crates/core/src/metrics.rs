//! Evaluation metrics and run reports.
//!
//! The paper evaluates with energy-delay² (ED², Section 3.4), reports
//! improvements relative to the stock baseline as geometric means, and
//! studies power-state *residency* — the fraction of time each tunable
//! spends at each value (Figures 15–16).

use harmonia_types::{HwConfig, Joules, Seconds, Tunable, Watts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One kernel invocation as executed by the runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Kernel name, interned: every record of the same kernel shares one
    /// allocation with its [`KernelReport`].
    pub kernel: Arc<str>,
    /// Outer application iteration.
    pub iteration: u64,
    /// Hardware configuration the invocation ran at.
    pub cfg: HwConfig,
    /// Execution time.
    pub time: Seconds,
    /// Average card power over the invocation.
    pub card_power: Watts,
    /// Average GPU chip power.
    pub gpu_power: Watts,
    /// Average memory power.
    pub mem_power: Watts,
    /// VALUBusy counter (the FG loop's performance proxy).
    pub valu_busy_pct: f64,
}

/// Aggregate statistics for one kernel across a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name (interned; see [`InvocationRecord::kernel`]).
    pub kernel: Arc<str>,
    /// Number of invocations.
    pub invocations: u64,
    /// Total execution time.
    pub total_time: Seconds,
    /// Total card energy.
    pub card_energy: Joules,
}

/// Time-weighted residency of each tunable across its grid values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Residency {
    cu_count: BTreeMap<u32, f64>,
    cu_freq: BTreeMap<u32, f64>,
    mem_freq: BTreeMap<u32, f64>,
    total: f64,
}

impl Residency {
    /// Creates an empty residency accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `dt` seconds spent at `cfg`.
    pub fn record(&mut self, cfg: HwConfig, dt: Seconds) {
        let dt = dt.value();
        if dt <= 0.0 {
            return;
        }
        *self.cu_count.entry(cfg.raw_value(Tunable::CuCount)).or_insert(0.0) += dt;
        *self.cu_freq.entry(cfg.raw_value(Tunable::CuFreq)).or_insert(0.0) += dt;
        *self.mem_freq.entry(cfg.raw_value(Tunable::MemFreq)).or_insert(0.0) += dt;
        self.total += dt;
    }

    fn map_of(&self, tunable: Tunable) -> &BTreeMap<u32, f64> {
        match tunable {
            Tunable::CuCount => &self.cu_count,
            Tunable::CuFreq => &self.cu_freq,
            Tunable::MemFreq => &self.mem_freq,
        }
    }

    /// Fraction of total time spent with `tunable` at `value` (0 when the
    /// value was never used or nothing has been recorded).
    pub fn fraction(&self, tunable: Tunable, value: u32) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.map_of(tunable).get(&value).copied().unwrap_or(0.0) / self.total
    }

    /// The full residency distribution of one tunable: `(value, fraction)`
    /// pairs in ascending value order.
    pub fn distribution(&self, tunable: Tunable) -> Vec<(u32, f64)> {
        if self.total <= 0.0 {
            return Vec::new();
        }
        self.map_of(tunable)
            .iter()
            .map(|(&v, &t)| (v, t / self.total))
            .collect()
    }

    /// Number of distinct values a tunable visited.
    pub fn distinct_values(&self, tunable: Tunable) -> usize {
        self.map_of(tunable).len()
    }
}

/// The complete result of running an application under one governor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Governor name.
    pub governor: String,
    /// Total execution time (the paper's D).
    pub total_time: Seconds,
    /// Total card energy (the paper's E).
    pub card_energy: Joules,
    /// GPU chip share of the energy.
    pub gpu_energy: Joules,
    /// Memory share of the energy.
    pub mem_energy: Joules,
    /// Per-kernel aggregates.
    pub per_kernel: Vec<KernelReport>,
    /// Power-state residency over the run.
    pub residency: Residency,
    /// Full invocation trace.
    pub trace: Vec<InvocationRecord>,
}

impl RunReport {
    /// Energy-delay product `E·D`.
    pub fn ed(&self) -> f64 {
        self.card_energy.value() * self.total_time.value()
    }

    /// Energy-delay-squared product `E·D²` — the paper's primary metric.
    pub fn ed2(&self) -> f64 {
        self.card_energy.value() * self.total_time.value().powi(2)
    }

    /// Time-average card power over the run.
    pub fn avg_power(&self) -> Watts {
        if self.total_time.value() <= 0.0 {
            return Watts(0.0);
        }
        self.card_energy / self.total_time
    }

    /// Per-kernel report lookup.
    pub fn kernel_report(&self, name: &str) -> Option<&KernelReport> {
        self.per_kernel.iter().find(|k| &*k.kernel == name)
    }

    /// Peak card power over the run (from the invocation trace). Returns
    /// zero when the run was executed without trace recording.
    pub fn peak_power(&self) -> Watts {
        self.trace
            .iter()
            .map(|r| r.card_power)
            .fold(Watts(0.0), Watts::max)
    }
}

/// Relative improvement of `candidate` over `baseline` for a
/// lower-is-better metric: `1 − candidate/baseline` (0.12 = 12% better).
pub fn improvement(baseline: f64, candidate: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    1.0 - candidate / baseline
}

/// Relative performance of `candidate` versus `baseline` execution times:
/// `baseline/candidate` (>1 means the candidate is faster).
pub fn relative_performance(baseline: Seconds, candidate: Seconds) -> f64 {
    if candidate.value() <= 0.0 {
        return 0.0;
    }
    baseline.value() / candidate.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ComputeConfig, MegaHertz, MemoryConfig};

    fn cfg(cu: u32, f: u32, m: u32) -> HwConfig {
        HwConfig::new(
            ComputeConfig::new(cu, MegaHertz(f)).unwrap(),
            MemoryConfig::new(MegaHertz(m)).unwrap(),
        )
    }

    fn report(time: f64, energy: f64) -> RunReport {
        RunReport {
            app: "demo".into(),
            governor: "test".into(),
            total_time: Seconds(time),
            card_energy: Joules(energy),
            gpu_energy: Joules(energy * 0.6),
            mem_energy: Joules(energy * 0.25),
            per_kernel: vec![],
            residency: Residency::new(),
            trace: vec![],
        }
    }

    #[test]
    fn ed_metrics() {
        let r = report(2.0, 100.0);
        assert_eq!(r.ed(), 200.0);
        assert_eq!(r.ed2(), 400.0);
        assert_eq!(r.avg_power(), Watts(50.0));
    }

    #[test]
    fn zero_time_average_power_is_zero() {
        assert_eq!(report(0.0, 10.0).avg_power(), Watts(0.0));
    }

    #[test]
    fn peak_power_from_trace() {
        let mut r = report(1.0, 100.0);
        assert_eq!(r.peak_power(), Watts(0.0));
        for (p, t) in [(120.0, 0.2), (250.0, 0.1), (90.0, 0.7)] {
            r.trace.push(InvocationRecord {
                kernel: "k".into(),
                iteration: 0,
                cfg: HwConfig::max_hd7970(),
                time: Seconds(t),
                card_power: Watts(p),
                gpu_power: Watts(p * 0.7),
                mem_power: Watts(p * 0.2),
                valu_busy_pct: 50.0,
            });
        }
        assert_eq!(r.peak_power(), Watts(250.0));
    }

    #[test]
    fn improvement_signs() {
        assert!((improvement(100.0, 88.0) - 0.12).abs() < 1e-12);
        assert!(improvement(100.0, 120.0) < 0.0);
        assert_eq!(improvement(0.0, 1.0), 0.0);
    }

    #[test]
    fn relative_performance_signs() {
        assert!(relative_performance(Seconds(2.0), Seconds(1.0)) > 1.0);
        assert!(relative_performance(Seconds(1.0), Seconds(2.0)) < 1.0);
        assert_eq!(relative_performance(Seconds(1.0), Seconds(0.0)), 0.0);
    }

    #[test]
    fn residency_fractions_sum_to_one_per_tunable() {
        let mut r = Residency::new();
        r.record(cfg(32, 1000, 1375), Seconds(3.0));
        r.record(cfg(32, 1000, 775), Seconds(1.0));
        assert!((r.fraction(Tunable::MemFreq, 1375) - 0.75).abs() < 1e-12);
        assert!((r.fraction(Tunable::MemFreq, 775) - 0.25).abs() < 1e-12);
        assert_eq!(r.fraction(Tunable::MemFreq, 475), 0.0);
        let dist = r.distribution(Tunable::MemFreq);
        let total: f64 = dist.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(r.distinct_values(Tunable::MemFreq), 2);
        assert_eq!(r.distinct_values(Tunable::CuCount), 1);
        assert!((r.fraction(Tunable::CuCount, 32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residency_ignores_nonpositive_durations() {
        let mut r = Residency::new();
        r.record(cfg(32, 1000, 1375), Seconds(0.0));
        r.record(cfg(32, 1000, 1375), Seconds(-1.0));
        assert!(r.distribution(Tunable::CuCount).is_empty());
        assert_eq!(r.fraction(Tunable::CuCount, 32), 0.0);
    }
}
