//! Measured performance sensitivities (Section 4.1).
//!
//! "Sensitivity ... is computed as the ratio of the relative change in the
//! performance metric to the relative change in the corresponding values of
//! the hardware tunable", with the *other* tunables held at their maxima so
//! they are not the limiting factor. CU-count and CU-frequency sensitivities
//! are aggregated into a single compute-throughput sensitivity.

use harmonia_sim::{CachedModel, KernelProfile, SimCache, TimingModel};
use harmonia_types::{ComputeConfig, GridSpec, HwConfig, MegaHertz, MemoryConfig};
use serde::{Deserialize, Serialize};

/// The four probe configurations sensitivity measurement simulates on a
/// grid: the shared maximum plus one lowered point per tunable (half the
/// CUs, half the compute clock — both snapped onto the grid — and the
/// minimum memory clock). On [`GridSpec::HD7970`] these are the paper's
/// (32, 1000, 1375) / (16, 1000, 1375) / (32, 500, 1375) / (32, 1000, 475).
fn probe_points(grid: &GridSpec) -> [(u32, MegaHertz, MegaHertz); 4] {
    let cu_hi = grid.cu_max;
    let cu_target = grid.cu_max / 2;
    let cu_lo = if cu_target <= grid.cu_min {
        grid.cu_min
    } else {
        grid.cu_min + ((cu_target - grid.cu_min) / grid.cu_step) * grid.cu_step
    };
    let f_hi = grid.cu_freq_max;
    let f_lo = grid.snap_cu_freq(MegaHertz(f_hi.value() / 2));
    let m_hi = grid.mem_freq_max;
    let m_lo = grid.mem_freq_min;
    [(cu_hi, f_hi, m_hi), (cu_lo, f_hi, m_hi), (cu_hi, f_lo, m_hi), (cu_hi, f_hi, m_lo)]
}

/// A kernel's measured (or predicted) sensitivities, as fractions where 1.0
/// means perfect proportional scaling with the tunable and 0.0 means no
/// effect. Values may exceed [0, 1] slightly (super-linear effects) or go
/// negative (e.g. cache thrashing makes *fewer* CUs faster).
///
/// Sensitivity is kept *per tunable* — "Sensitivity is computed for each
/// tunable using weighted linear equation per Table 3" (Section 5.2) — with
/// [`Sensitivity::compute`] providing the aggregated compute-throughput
/// number the paper also reports.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Sensitivity to the number of active CUs.
    pub cu: f64,
    /// Sensitivity to the CU clock frequency.
    pub freq: f64,
    /// Sensitivity to memory bandwidth (memory bus frequency).
    pub bandwidth: f64,
}

impl Sensitivity {
    /// The aggregated compute-throughput sensitivity (Section 4.1: "the
    /// sensitivity to the number of CUs and CU frequency are aggregated into
    /// a single compute throughput sensitivity metric").
    pub fn compute(&self) -> f64 {
        0.5 * (self.cu + self.freq)
    }

    /// Invocations averaged by [`Sensitivity::measure`].
    pub const MEASURE_ITERATIONS: u64 = 4;

    /// Simulations one [`Sensitivity::measure`] call issues when nothing is
    /// memoized: per iteration, each of the three sensitivities probes a
    /// high and a low point (the shared high point is re-simulated by each).
    pub const SIMULATIONS_PER_MEASURE: usize = 6 * Self::MEASURE_ITERATIONS as usize;

    /// Measures all sensitivities of `kernel` on `model`, averaged over
    /// the first four invocations so data-dependent phases contribute (the
    /// paper executes "multiple times for multiple iterations" and averages;
    /// Section 4.1).
    pub fn measure<M: TimingModel>(model: &M, kernel: &KernelProfile) -> Sensitivity {
        Self::measure_on(&GridSpec::HD7970, model, kernel)
    }

    /// [`Sensitivity::measure`] on an arbitrary device grid: the probe
    /// points come from the grid (see [`probe_points`]) so catalog devices
    /// measure sensitivity across *their* tunable ranges.
    pub fn measure_on<M: TimingModel>(
        grid: &GridSpec,
        model: &M,
        kernel: &KernelProfile,
    ) -> Sensitivity {
        Self::measure_cached_on(grid, model, &SimCache::new(), kernel)
    }

    /// [`Sensitivity::measure`] through a shared simulation cache: the four
    /// probe configurations are pre-warmed with one batched sweep per
    /// averaged invocation, then the probe ratios are read back as pure
    /// cache hits. Callers that already swept the configuration space
    /// (training collection) pass their cache so every probe point is free.
    pub fn measure_cached<M: TimingModel>(
        model: &M,
        cache: &SimCache,
        kernel: &KernelProfile,
    ) -> Sensitivity {
        Self::measure_cached_on(&GridSpec::HD7970, model, cache, kernel)
    }

    /// [`Sensitivity::measure_cached`] on an arbitrary device grid.
    pub fn measure_cached_on<M: TimingModel>(
        grid: &GridSpec,
        model: &M,
        cache: &SimCache,
        kernel: &KernelProfile,
    ) -> Sensitivity {
        const ITERS: u64 = Sensitivity::MEASURE_ITERATIONS;
        let probe_cfgs: Vec<HwConfig> = probe_points(grid)
            .iter()
            .map(|&(cu, freq, mem)| {
                HwConfig::new(
                    ComputeConfig::new_on(grid, cu, freq).expect("valid grid point"),
                    MemoryConfig::new_on(grid, mem).expect("valid grid point"),
                )
            })
            .collect();
        let cached = CachedModel::new(model, cache);
        for i in 0..ITERS {
            cached.simulate_batch(&probe_cfgs, kernel, i);
        }
        let mut acc = Sensitivity::default();
        for i in 0..ITERS {
            let s = Self::measure_at_on(grid, &cached, kernel, i);
            acc.cu += s.cu;
            acc.freq += s.freq;
            acc.bandwidth += s.bandwidth;
        }
        Sensitivity {
            cu: acc.cu / ITERS as f64,
            freq: acc.freq / ITERS as f64,
            bandwidth: acc.bandwidth / ITERS as f64,
        }
    }

    /// Measures sensitivities at a specific invocation index (phase).
    pub fn measure_at<M: TimingModel>(
        model: &M,
        kernel: &KernelProfile,
        iteration: u64,
    ) -> Sensitivity {
        Self::measure_at_on(&GridSpec::HD7970, model, kernel, iteration)
    }

    /// [`Sensitivity::measure_at`] on an arbitrary device grid.
    pub fn measure_at_on<M: TimingModel>(
        grid: &GridSpec,
        model: &M,
        kernel: &KernelProfile,
        iteration: u64,
    ) -> Sensitivity {
        Sensitivity {
            cu: cu_sensitivity_on(grid, model, kernel, iteration),
            freq: freq_sensitivity_on(grid, model, kernel, iteration),
            bandwidth: bandwidth_sensitivity_on(grid, model, kernel, iteration),
        }
    }
}

fn time_at<M: TimingModel>(
    grid: &GridSpec,
    model: &M,
    kernel: &KernelProfile,
    iteration: u64,
    cu: u32,
    freq: MegaHertz,
    mem: MegaHertz,
) -> f64 {
    let cfg = HwConfig::new(
        ComputeConfig::new_on(grid, cu, freq).expect("valid grid point"),
        MemoryConfig::new_on(grid, mem).expect("valid grid point"),
    );
    model.simulate(cfg, kernel, iteration).time.value()
}

/// Sensitivity of execution time to the number of active CUs, measured
/// between 16 and 32 CUs with frequency and bandwidth at maximum.
pub fn cu_sensitivity<M: TimingModel>(model: &M, kernel: &KernelProfile, iteration: u64) -> f64 {
    cu_sensitivity_on(&GridSpec::HD7970, model, kernel, iteration)
}

/// [`cu_sensitivity`] on an arbitrary device grid: between roughly half
/// the CUs and all of them, clocks at maximum.
pub fn cu_sensitivity_on<M: TimingModel>(
    grid: &GridSpec,
    model: &M,
    kernel: &KernelProfile,
    iteration: u64,
) -> f64 {
    let [(cu_hi, f_hi, m_hi), (cu_lo, _, _), _, _] = probe_points(grid);
    let t_hi = time_at(grid, model, kernel, iteration, cu_hi, f_hi, m_hi);
    let t_lo = time_at(grid, model, kernel, iteration, cu_lo, f_hi, m_hi);
    relative_sensitivity(t_lo, t_hi, f64::from(cu_hi) / f64::from(cu_lo))
}

/// Sensitivity to CU frequency, measured between 500 MHz and 1 GHz.
pub fn freq_sensitivity<M: TimingModel>(model: &M, kernel: &KernelProfile, iteration: u64) -> f64 {
    freq_sensitivity_on(&GridSpec::HD7970, model, kernel, iteration)
}

/// [`freq_sensitivity`] on an arbitrary device grid: between roughly half
/// the maximum compute clock (snapped on-grid) and the maximum.
pub fn freq_sensitivity_on<M: TimingModel>(
    grid: &GridSpec,
    model: &M,
    kernel: &KernelProfile,
    iteration: u64,
) -> f64 {
    let [(cu_hi, f_hi, m_hi), _, (_, f_lo, _), _] = probe_points(grid);
    let t_hi = time_at(grid, model, kernel, iteration, cu_hi, f_hi, m_hi);
    let t_lo = time_at(grid, model, kernel, iteration, cu_hi, f_lo, m_hi);
    relative_sensitivity(t_lo, t_hi, f64::from(f_hi.value()) / f64::from(f_lo.value()))
}

/// Sensitivity to memory bandwidth, measured between 475 MHz and 1375 MHz
/// bus clocks (90 → 264 GB/s).
pub fn bandwidth_sensitivity<M: TimingModel>(
    model: &M,
    kernel: &KernelProfile,
    iteration: u64,
) -> f64 {
    bandwidth_sensitivity_on(&GridSpec::HD7970, model, kernel, iteration)
}

/// [`bandwidth_sensitivity`] on an arbitrary device grid: between the
/// grid's minimum and maximum memory bus clocks.
pub fn bandwidth_sensitivity_on<M: TimingModel>(
    grid: &GridSpec,
    model: &M,
    kernel: &KernelProfile,
    iteration: u64,
) -> f64 {
    let [(cu_hi, f_hi, m_hi), _, _, (_, _, m_lo)] = probe_points(grid);
    let t_hi = time_at(grid, model, kernel, iteration, cu_hi, f_hi, m_hi);
    let t_lo = time_at(grid, model, kernel, iteration, cu_hi, f_hi, m_lo);
    relative_sensitivity(t_lo, t_hi, f64::from(m_hi.value()) / f64::from(m_lo.value()))
}

/// `((t_low / t_high) − 1) / (ratio − 1)`: 1.0 when time scales perfectly
/// inversely with the tunable, 0.0 when the tunable does not matter,
/// negative when *more* resource makes things slower.
fn relative_sensitivity(t_low: f64, t_high: f64, resource_ratio: f64) -> f64 {
    (t_low / t_high - 1.0) / (resource_ratio - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::IntervalModel;
    use harmonia_workloads::suite;

    fn model() -> IntervalModel {
        IntervalModel::default()
    }

    #[test]
    fn maxflops_is_compute_sensitive_not_bandwidth() {
        let app = suite::maxflops();
        let s = Sensitivity::measure(&model(), &app.kernels[0]);
        assert!(s.compute() > 0.8, "MaxFlops compute sensitivity {}", s.compute());
        assert!(s.bandwidth < 0.1, "MaxFlops bandwidth sensitivity {}", s.bandwidth);
    }

    #[test]
    fn devicememory_is_bandwidth_sensitive() {
        let app = suite::devicememory();
        let s = Sensitivity::measure(&model(), &app.kernels[0]);
        assert!(s.bandwidth > 0.6, "DeviceMemory bandwidth sensitivity {}", s.bandwidth);
        // Compute sensitivity is moderate (clock-domain crossing; Fig 9),
        // not zero.
        assert!(s.compute() < 0.6);
    }

    #[test]
    fn bottom_scan_compute_sensitive_bandwidth_insensitive() {
        // Figure 8 / Section 7.1: high compute sensitivity, can drop the
        // memory bus to 475 MHz.
        let app = suite::sort();
        let k = app.kernel("Sort.BottomScan").unwrap();
        let s = Sensitivity::measure(&model(), k);
        assert!(s.compute() > 0.5, "BottomScan compute {}", s.compute());
        assert!(s.bandwidth < 0.25, "BottomScan bandwidth {}", s.bandwidth);
    }

    #[test]
    fn srad_prepare_is_insensitive_to_compute() {
        // Figure 8: 75% divergence but 8 instructions — overhead dominated.
        let app = suite::srad();
        let k = app.kernel("SRAD.Prepare").unwrap();
        let s = Sensitivity::measure(&model(), k);
        assert!(s.compute() < 0.3, "SRAD.Prepare compute {}", s.compute());
    }

    #[test]
    fn advance_velocity_more_bandwidth_sensitive_than_bottom_scan() {
        // Figure 7's ordering.
        let comd = suite::comd();
        let sort = suite::sort();
        let av = Sensitivity::measure(&model(), comd.kernel("CoMD.AdvanceVelocity").unwrap());
        let bs = Sensitivity::measure(&model(), sort.kernel("Sort.BottomScan").unwrap());
        assert!(
            av.bandwidth > bs.bandwidth + 0.1,
            "AdvanceVelocity {} vs BottomScan {}",
            av.bandwidth,
            bs.bandwidth
        );
    }

    #[test]
    fn bpt_cu_sensitivity_is_negative() {
        // Thrashing: fewer CUs are faster, so CU sensitivity < 0.
        let app = suite::bpt();
        let k = app.kernel("BPT.FindK").unwrap();
        let cu = cu_sensitivity(&model(), k, 0);
        assert!(cu < 0.05, "BPT CU sensitivity {cu} should be ~negative");
    }

    #[test]
    fn probe_points_are_on_grid_for_every_catalog_device() {
        use harmonia_types::DeviceSpec;
        // The HD7970 probes are exactly the paper's four points.
        assert_eq!(
            probe_points(&GridSpec::HD7970),
            [
                (32, MegaHertz(1000), MegaHertz(1375)),
                (16, MegaHertz(1000), MegaHertz(1375)),
                (32, MegaHertz(500), MegaHertz(1375)),
                (32, MegaHertz(1000), MegaHertz(475)),
            ]
        );
        for name in DeviceSpec::catalog() {
            let spec = DeviceSpec::lookup(name).expect(name);
            let grid = spec.grid();
            for (cu, f, m) in probe_points(grid) {
                assert!(ComputeConfig::new_on(grid, cu, f).is_ok(), "{name} ({cu}, {f:?})");
                assert!(MemoryConfig::new_on(grid, m).is_ok(), "{name} {m:?}");
            }
            // Each lowered probe genuinely differs from the shared maximum,
            // so the sensitivity ratios are well-defined on every device.
            let [(cu_hi, f_hi, m_hi), (cu_lo, _, _), (_, f_lo, _), (_, _, m_lo)] =
                probe_points(grid);
            assert!(cu_lo < cu_hi, "{name} CU probe");
            assert!(f_lo < f_hi, "{name} freq probe");
            assert!(m_lo < m_hi, "{name} mem probe");
        }
    }

    #[test]
    fn catalog_devices_measure_finite_sensitivities() {
        let app = suite::maxflops();
        for name in harmonia_types::DeviceSpec::catalog() {
            let spec = harmonia_types::DeviceSpec::lookup(name).expect(name);
            let m = IntervalModel::new(spec.gpu.clone());
            let s = Sensitivity::measure_on(spec.grid(), &m, &app.kernels[0]);
            assert!(s.cu.is_finite() && s.freq.is_finite() && s.bandwidth.is_finite(), "{name}");
            // MaxFlops stays compute-bound on every catalog part.
            assert!(s.compute() > 0.5, "{name} compute sensitivity {}", s.compute());
        }
    }

    #[test]
    fn relative_sensitivity_identities() {
        // Perfect scaling: halving the resource doubles the time.
        assert!((relative_sensitivity(2.0, 1.0, 2.0) - 1.0).abs() < 1e-12);
        // No effect.
        assert!(relative_sensitivity(1.0, 1.0, 2.0).abs() < 1e-12);
        // Inverse effect (more resource is slower).
        assert!(relative_sensitivity(0.5, 1.0, 2.0) < 0.0);
    }

    #[test]
    fn sensitivities_bounded_for_whole_suite() {
        let m = model();
        for (_, k) in suite::training_kernels() {
            let s = Sensitivity::measure(&m, &k);
            assert!(
                (-1.0..=1.5).contains(&s.compute()),
                "{} compute {} out of band",
                k.name,
                s.compute()
            );
            assert!(
                (-0.5..=1.5).contains(&s.bandwidth),
                "{} bandwidth {} out of band",
                k.name,
                s.bandwidth
            );
        }
    }
}
