//! Counter sanitization: the hardening stage between the monitoring block
//! and everything that consumes its samples.
//!
//! Real counter reads glitch — values come back non-finite, out of physical
//! range, latched at zero, or spiked by orders of magnitude (see
//! `harmonia_sim::faults` for the injected taxonomy). An unhardened pipeline
//! feeds those readings straight into power accounting and the governor's
//! learning loops, where a single NaN poisons the whole run's energy total.
//! [`CounterSanitizer`] guarantees that everything downstream of it only
//! ever sees finite, in-range samples:
//!
//! 1. **Hard checks** — every float field must be finite and inside its
//!    physical range (percentages in 0–100, fractions in 0–1, bandwidth
//!    below the bus limit, DRAM traffic below `bandwidth × duration`).
//! 2. **Dead-sample detection** — a sample whose dynamic counters are all
//!    zero while the timer ran is a failed read, not an idle kernel.
//!    Partial dropouts are caught per channel: a dynamic counter latched
//!    at exactly zero while the kernel's last good sample was active on
//!    that channel is substituted even when the rest of the sample looks
//!    healthy.
//! 3. **EWMA outlier rejection** — per-kernel, per-field running mean and
//!    absolute deviation (reset on configuration change, armed only after a
//!    warmup) catch in-range spikes. Thresholds are deliberately generous:
//!    phase-modulated kernels legitimately swing their counters, and a
//!    false rejection costs more than a missed mild outlier.
//! 4. **Last-good substitution** — rejected fields are replaced from the
//!    most recent sanitized sample; when two or more fields of one sample
//!    are rejected the whole sample is deemed corrupt and replaced
//!    wholesale (keeping the independently-sanitized timer).
//! 5. **Bounded holding** — wholesale substitution is a bridge, not a
//!    destination: after [`SanitizerConfig::hold_bound`] *consecutive*
//!    wholesale holds the sanitizer stops serving stale counters and
//!    escalates, passing a recognizably dead (but finite and in-range)
//!    sample downstream so the watchdog / degradation ladder trips instead
//!    of being masked forever by a permanently stuck counter block. Each
//!    escalation emits [`TraceEvent::SanitizerEscalated`].
//!
//! Every substitution emits [`TraceEvent::SanitizerReject`] so chaos runs
//! can count what the sanitizer absorbed. The stage is opt-in — stack a
//! [`SanitizeLayer`](crate::governor::SanitizeLayer) over the governor (the
//! registry's `hardened:*` policies do); it hooks
//! [`Governor::condition`](crate::governor::Governor::condition), so the
//! runtime accounts power/energy from the sanitized measurement. The
//! default path is byte-identical to previous behaviour.

use crate::telemetry::{TraceEvent, TraceHandle};
use harmonia_power::{Activity, PowerModel};
use harmonia_sim::CounterSample;
use harmonia_types::{HwConfig, Seconds};
use std::collections::HashMap;

/// Physical ceiling for achieved bandwidth used by the default plausibility
/// checks (GB/s). The HD 7970's bus peaks at 264 GB/s; the margin tolerates
/// model overshoot without admitting sensor garbage.
pub const DEFAULT_MAX_BW_GBPS: f64 = 300.0;

/// Number of fields tracked by the EWMA outlier stage.
const OUTLIER_FIELDS: usize = 6;

/// Tuning for the [`CounterSanitizer`].
#[derive(Debug, Clone)]
pub struct SanitizerConfig {
    /// Physical bandwidth ceiling (GB/s) for the achieved-bandwidth and
    /// DRAM-traffic hard checks.
    pub max_bw_gbps: f64,
    /// Same-configuration samples observed before the outlier stage arms.
    pub warmup: u32,
    /// Outlier threshold in multiples of the running absolute deviation.
    pub outlier_k: f64,
    /// Outlier threshold floor as a fraction of the field's hard range —
    /// deviations below this are never outliers, whatever the history says.
    pub outlier_floor: f64,
    /// EWMA smoothing factor for the running mean/deviation.
    pub ewma_alpha: f64,
    /// Consecutive wholesale last-good holds tolerated before the
    /// sanitizer escalates (serves a dead sample the watchdog can see)
    /// instead of masking a stuck counter block forever. `0` disables the
    /// bound (the pre-escalation behaviour).
    pub hold_bound: u32,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        Self {
            max_bw_gbps: DEFAULT_MAX_BW_GBPS,
            warmup: 4,
            outlier_k: 8.0,
            outlier_floor: 0.35,
            ewma_alpha: 0.3,
            hold_bound: 6,
        }
    }
}

/// Whether a sample passes the *static* plausibility checks alone: every
/// float field finite and inside its physical range. Shared with the
/// governor watchdogs, which must judge anomalies without carrying the
/// sanitizer's per-kernel history.
pub fn counters_plausible(c: &CounterSample) -> bool {
    let pct_ok = |v: f64| v.is_finite() && (0.0..=100.0).contains(&v);
    let frac_ok = |v: f64| v.is_finite() && (0.0..=1.0).contains(&v);
    c.duration.value().is_finite()
        && c.duration.value() > 0.0
        && pct_ok(c.valu_busy_pct)
        && pct_ok(c.valu_utilization_pct)
        && pct_ok(c.mem_unit_busy_pct)
        && pct_ok(c.mem_unit_stalled_pct)
        && pct_ok(c.write_unit_stalled_pct)
        && frac_ok(c.ic_activity)
        && frac_ok(c.norm_vgpr)
        && frac_ok(c.norm_sgpr)
        && frac_ok(c.occupancy_fraction)
        && frac_ok(c.l2_hit_rate)
        && c.dram_bytes.is_finite()
        && c.dram_bytes >= 0.0
        && c.achieved_bw_gbps.is_finite()
        && (0.0..=DEFAULT_MAX_BW_GBPS).contains(&c.achieved_bw_gbps)
}

/// Whether a sample looks like a failed counter read: the timer ran but
/// every dynamic counter reports zero. A kernel that executed did
/// *something*; all-zero activity is physically impossible.
pub fn dead_sample(c: &CounterSample) -> bool {
    c.duration.value() > 0.0
        && c.valu_insts == 0
        && c.vfetch_insts == 0
        && c.vwrite_insts == 0
        && c.valu_busy_pct == 0.0
        && c.dram_bytes == 0.0
}

/// One float field's hard bounds and (optional) outlier-tracking slot.
struct FieldSpec {
    name: &'static str,
    get: fn(&CounterSample) -> f64,
    set: fn(&mut CounterSample, f64),
    lo: f64,
    hi: f64,
    stat: Option<usize>,
}

/// The statically-bounded float fields. Bandwidth and DRAM traffic have
/// config-dependent bounds and are handled separately.
const FIELDS: &[FieldSpec] = &[
    FieldSpec {
        name: "valu_busy_pct",
        get: |c| c.valu_busy_pct,
        set: |c, v| c.valu_busy_pct = v,
        lo: 0.0,
        hi: 100.0,
        stat: Some(0),
    },
    FieldSpec {
        name: "valu_utilization_pct",
        get: |c| c.valu_utilization_pct,
        set: |c, v| c.valu_utilization_pct = v,
        lo: 0.0,
        hi: 100.0,
        stat: Some(1),
    },
    FieldSpec {
        name: "mem_unit_busy_pct",
        get: |c| c.mem_unit_busy_pct,
        set: |c, v| c.mem_unit_busy_pct = v,
        lo: 0.0,
        hi: 100.0,
        stat: Some(2),
    },
    FieldSpec {
        name: "mem_unit_stalled_pct",
        get: |c| c.mem_unit_stalled_pct,
        set: |c, v| c.mem_unit_stalled_pct = v,
        lo: 0.0,
        hi: 100.0,
        stat: Some(3),
    },
    FieldSpec {
        name: "write_unit_stalled_pct",
        get: |c| c.write_unit_stalled_pct,
        set: |c, v| c.write_unit_stalled_pct = v,
        lo: 0.0,
        hi: 100.0,
        stat: Some(4),
    },
    FieldSpec {
        name: "ic_activity",
        get: |c| c.ic_activity,
        set: |c, v| c.ic_activity = v,
        lo: 0.0,
        hi: 1.0,
        stat: Some(5),
    },
    FieldSpec {
        name: "norm_vgpr",
        get: |c| c.norm_vgpr,
        set: |c, v| c.norm_vgpr = v,
        lo: 0.0,
        hi: 1.0,
        stat: None,
    },
    FieldSpec {
        name: "norm_sgpr",
        get: |c| c.norm_sgpr,
        set: |c, v| c.norm_sgpr = v,
        lo: 0.0,
        hi: 1.0,
        stat: None,
    },
    FieldSpec {
        name: "occupancy_fraction",
        get: |c| c.occupancy_fraction,
        set: |c, v| c.occupancy_fraction = v,
        lo: 0.0,
        hi: 1.0,
        stat: None,
    },
    FieldSpec {
        name: "l2_hit_rate",
        get: |c| c.l2_hit_rate,
        set: |c, v| c.l2_hit_rate = v,
        lo: 0.0,
        hi: 1.0,
        stat: None,
    },
];

#[derive(Debug, Clone, Copy)]
struct FieldStats {
    mean: f64,
    dev: f64,
}

#[derive(Debug, Default)]
struct KernelState {
    last_cfg: Option<HwConfig>,
    samples: u32,
    stats: [Option<FieldStats>; OUTLIER_FIELDS],
    last_good: Option<(Seconds, CounterSample)>,
    /// Consecutive wholesale last-good holds served (escalation trigger).
    held: u32,
}

/// Stateful per-kernel counter sanitizer (see module docs).
#[derive(Debug)]
pub struct CounterSanitizer<'a> {
    config: SanitizerConfig,
    kernels: HashMap<String, KernelState>,
    rejects: u64,
    /// Optional power model for the physics check: a sample whose implied
    /// card power exceeds its configuration's fully-busy ceiling is a
    /// lying sensor, whatever the per-field ranges say.
    power: Option<&'a PowerModel>,
}

impl<'a> CounterSanitizer<'a> {
    /// A sanitizer with the given tuning.
    pub fn new(config: SanitizerConfig) -> Self {
        Self {
            config,
            kernels: HashMap::new(),
            rejects: 0,
            power: None,
        }
    }

    /// Arms the power-aware plausibility check: samples whose implied card
    /// power exceeds the physical ceiling of the configuration they ran
    /// under (fully busy card, saturated bus) are rejected wholesale.
    pub fn with_power(mut self, power: &'a PowerModel) -> Self {
        self.power = Some(power);
        self
    }

    /// Total field/sample rejections so far.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Sanitizes one invocation's measurement: returns a finite, in-range
    /// `(time, counters)` pair, substituting from the kernel's last good
    /// sample where the raw reading is rejected. Emits
    /// [`TraceEvent::SanitizerReject`] per substitution.
    pub fn sanitize(
        &mut self,
        kernel: &str,
        iteration: u64,
        cfg: HwConfig,
        time: Seconds,
        counters: CounterSample,
        trace: &TraceHandle,
    ) -> (Seconds, CounterSample) {
        let ks = self.kernels.entry(kernel.to_string()).or_default();
        if ks.last_cfg != Some(cfg) {
            // The operating point moved: counter levels legitimately shift,
            // so the outlier history no longer applies.
            ks.last_cfg = Some(cfg);
            ks.samples = 0;
            ks.stats = [None; OUTLIER_FIELDS];
        }
        let mut rejected: Vec<(&'static str, f64)> = Vec::new();
        let mut c = counters;

        // Timer channel: the wall clock and the counter block's duration
        // mirror each other and everything downstream divides by them.
        let good_time = ks.last_good.map(|(t, _)| t);
        let t = sanitize_positive(time, good_time, 1e-6, "time_s", &mut rejected);
        let dur = sanitize_positive(
            c.duration,
            ks.last_good.map(|(_, g)| g.duration),
            t.value(),
            "duration",
            &mut rejected,
        );
        c.duration = dur;

        // Failed read: all dynamic counters zero while the timer ran.
        let dead = dead_sample(&c);

        // Statically-bounded fields: hard range, then (armed) EWMA outlier.
        for f in FIELDS {
            let raw = (f.get)(&c);
            let in_range = raw.is_finite() && (f.lo..=f.hi).contains(&raw);
            let outlier = in_range
                && ks.samples >= self.config.warmup
                && f.stat
                    .and_then(|i| ks.stats[i])
                    .is_some_and(|st| {
                        let threshold = (self.config.outlier_k * st.dev)
                            .max(self.config.outlier_floor * (f.hi - f.lo));
                        (raw - st.mean).abs() > threshold
                    });
            if !in_range || outlier {
                rejected.push((f.name, raw));
                let sub = ks
                    .last_good
                    .map(|(_, g)| (f.get)(&g))
                    .unwrap_or(if raw.is_finite() {
                        raw.clamp(f.lo, f.hi)
                    } else {
                        f.lo
                    });
                (f.set)(&mut c, sub);
            }
        }

        // Config-dependent bounds: achieved bandwidth below the bus limit,
        // DRAM traffic below what that bandwidth could move in the sample.
        let bw_hi = self.config.max_bw_gbps;
        if !(c.achieved_bw_gbps.is_finite() && (0.0..=bw_hi).contains(&c.achieved_bw_gbps)) {
            rejected.push(("achieved_bw_gbps", c.achieved_bw_gbps));
            c.achieved_bw_gbps = ks
                .last_good
                .map(|(_, g)| g.achieved_bw_gbps)
                .unwrap_or(if c.achieved_bw_gbps.is_finite() {
                    c.achieved_bw_gbps.clamp(0.0, bw_hi)
                } else {
                    0.0
                });
        }
        let dram_hi = bw_hi * 1e9 * c.duration.value() * 4.0;
        if !(c.dram_bytes.is_finite() && (0.0..=dram_hi).contains(&c.dram_bytes)) {
            rejected.push(("dram_bytes", c.dram_bytes));
            c.dram_bytes = ks
                .last_good
                .map(|(_, g)| g.dram_bytes)
                .unwrap_or(if c.dram_bytes.is_finite() {
                    c.dram_bytes.clamp(0.0, dram_hi)
                } else {
                    0.0
                });
        }

        // Partial dropout: a dynamic channel latched at *exactly* zero
        // while the kernel's last good sample was active on it is a dropped
        // read, not a phase change — activity never snaps to a perfect zero
        // on hardware that is still executing the same kernel. The EWMA
        // stage catches this at a settled operating point, but it is
        // disarmed right after a configuration move, which is exactly when
        // a half-zeroed sample would otherwise teach the power-cap clamp a
        // fictitious idle and un-clamp the next grant.
        if !dead {
            if let Some((_, g)) = ks.last_good {
                if c.valu_busy_pct == 0.0 && g.valu_busy_pct > 0.0 {
                    rejected.push(("valu_busy_pct", 0.0));
                    c.valu_busy_pct = g.valu_busy_pct;
                }
                if c.dram_bytes == 0.0 && g.dram_bytes > 0.0 {
                    rejected.push(("dram_bytes", 0.0));
                    c.dram_bytes = g.dram_bytes;
                }
                if c.achieved_bw_gbps == 0.0 && g.achieved_bw_gbps > 0.0 {
                    rejected.push(("achieved_bw_gbps", 0.0));
                    c.achieved_bw_gbps = g.achieved_bw_gbps;
                }
                if c.valu_insts == 0 && g.valu_insts > 0 {
                    rejected.push(("valu_insts", 0.0));
                    c.valu_insts = g.valu_insts;
                }
                if c.vfetch_insts == 0 && g.vfetch_insts > 0 {
                    rejected.push(("vfetch_insts", 0.0));
                    c.vfetch_insts = g.vfetch_insts;
                }
                if c.vwrite_insts == 0 && g.vwrite_insts > 0 {
                    rejected.push(("vwrite_insts", 0.0));
                    c.vwrite_insts = g.vwrite_insts;
                }
            }
        }

        // Physics check: after per-field repair, the sample's *implied*
        // card power at the configuration it ran under must not exceed
        // that configuration's physical ceiling (fully busy card,
        // saturated bus). Each field can be individually in range while
        // the combination claims more power than the silicon can draw at
        // those clocks — the signature of a coordinated counter spike,
        // which would otherwise be booked as a phantom cap violation and
        // poison the clamp's activity learning.
        let impossible = !dead
            && self.power.is_some_and(|power| {
                let implied = Activity {
                    valu_activity: c.valu_activity(),
                    dram_bytes_per_sec: c.dram_bytes_per_sec(),
                    dram_traffic_fraction: c.ic_activity,
                };
                let projected = power.card_pwr(cfg, &implied).value();
                let ceiling = power.card_pwr(cfg, &Activity::streaming(1.0, 1.0)).value();
                // Per-field repair above guarantees finite inputs, so a
                // plain comparison is NaN-safe here.
                projected > ceiling * 1.01
            });
        if impossible {
            rejected.push(("sample_power", 0.0));
        }

        // Cross-field corruption: a dead read, a physically impossible
        // reading, or two-plus rejected fields in one sample, invalidates
        // the whole reading — substitute the last good sample wholesale
        // (keeping the sanitized timer).
        let counter_rejects = rejected
            .iter()
            .filter(|(n, _)| *n != "time_s" && *n != "duration")
            .count();
        let mut escalated = false;
        let mut quarantined = false;
        if dead || impossible || counter_rejects >= 2 {
            if let Some((_, good)) = ks.last_good {
                if dead {
                    rejected.push(("sample", 0.0));
                }
                let keep = c.duration;
                c = good;
                c.duration = keep;
                ks.held = ks.held.saturating_add(1);
                if self.config.hold_bound > 0 && ks.held >= self.config.hold_bound {
                    // The counter block has been wrong for `held` straight
                    // samples: stop bridging. Serve a finite, in-range but
                    // recognizably dead sample so downstream anomaly checks
                    // ([`dead_sample`]) trip and the watchdog / ladder takes
                    // over instead of learning from fiction.
                    escalated = true;
                    c.valu_insts = 0;
                    c.vfetch_insts = 0;
                    c.vwrite_insts = 0;
                    c.valu_busy_pct = 0.0;
                    c.valu_utilization_pct = 0.0;
                    c.dram_bytes = 0.0;
                    c.achieved_bw_gbps = 0.0;
                }
            } else if impossible {
                // A physically impossible *first* sample: nothing to bridge
                // from, so serve a recognizably dead reading instead — the
                // clamp and the anomaly checks both know to distrust it —
                // and learn nothing from the interval.
                quarantined = true;
                c.valu_insts = 0;
                c.vfetch_insts = 0;
                c.vwrite_insts = 0;
                c.valu_busy_pct = 0.0;
                c.valu_utilization_pct = 0.0;
                c.dram_bytes = 0.0;
                c.achieved_bw_gbps = 0.0;
            }
        } else {
            ks.held = 0;
        }

        for (field, raw) in &rejected {
            self.rejects += 1;
            trace.emit(|| TraceEvent::SanitizerReject {
                kernel: kernel.to_string(),
                iteration,
                field: (*field).to_string(),
                value: format!("{raw}"),
                substitute: match *field {
                    "time_s" => t.value(),
                    "duration" => c.duration.value(),
                    f => FIELDS
                        .iter()
                        .find(|s| s.name == f)
                        .map(|s| (s.get)(&c))
                        .unwrap_or(match f {
                            "achieved_bw_gbps" => c.achieved_bw_gbps,
                            "dram_bytes" => c.dram_bytes,
                            _ => 0.0,
                        }),
                },
            });
        }

        if escalated {
            let held = ks.held;
            trace.emit(|| TraceEvent::SanitizerEscalated {
                kernel: kernel.to_string(),
                iteration,
                held,
            });
            // Nothing about this interval is trustworthy: no EWMA learning,
            // and the dead substitute must not become the next "last good".
            return (t, c);
        }
        if quarantined {
            return (t, c);
        }

        // Learn from what was accepted (post-substitution values keep the
        // running stats finite by construction) and store the new last-good.
        let alpha = self.config.ewma_alpha;
        for f in FIELDS {
            let Some(i) = f.stat else { continue };
            let v = (f.get)(&c);
            match &mut ks.stats[i] {
                Some(st) => {
                    let delta = (v - st.mean).abs();
                    st.mean += alpha * (v - st.mean);
                    st.dev += alpha * (delta - st.dev);
                }
                slot @ None => {
                    *slot = Some(FieldStats {
                        mean: v,
                        dev: 0.25 * (f.hi - f.lo),
                    });
                }
            }
        }
        ks.samples = ks.samples.saturating_add(1);
        ks.last_good = Some((t, c));
        (t, c)
    }
}

/// Sanitizes a strictly-positive time channel.
fn sanitize_positive(
    v: Seconds,
    good: Option<Seconds>,
    fallback: f64,
    name: &'static str,
    rejected: &mut Vec<(&'static str, f64)>,
) -> Seconds {
    if v.value().is_finite() && v.value() > 0.0 {
        return v;
    }
    rejected.push((name, v.value()));
    Seconds(good.map(Seconds::value).unwrap_or(fallback))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> CounterSample {
        CounterSample {
            duration: Seconds(0.01),
            valu_busy_pct: 60.0,
            valu_utilization_pct: 90.0,
            mem_unit_busy_pct: 30.0,
            mem_unit_stalled_pct: 10.0,
            ic_activity: 0.4,
            norm_vgpr: 0.4,
            norm_sgpr: 0.3,
            valu_insts: 1_000_000,
            dram_bytes: 1e7,
            achieved_bw_gbps: 80.0,
            occupancy_fraction: 0.8,
            l2_hit_rate: 0.5,
            ..CounterSample::default()
        }
    }

    fn sanitizer() -> CounterSanitizer<'static> {
        CounterSanitizer::new(SanitizerConfig::default())
    }

    #[test]
    fn clean_samples_pass_untouched() {
        let mut s = sanitizer();
        let cfg = HwConfig::max_hd7970();
        let trace = TraceHandle::new();
        for i in 0..10 {
            let (t, c) = s.sanitize("k", i, cfg, Seconds(0.01), good(), &trace);
            assert_eq!(t, Seconds(0.01));
            assert_eq!(c, good());
        }
        assert_eq!(s.rejects(), 0);
        assert!(trace.is_empty());
    }

    #[test]
    fn nan_fields_are_substituted_from_last_good() {
        let mut s = sanitizer();
        let cfg = HwConfig::max_hd7970();
        let trace = TraceHandle::new();
        s.sanitize("k", 0, cfg, Seconds(0.01), good(), &trace);
        let mut bad = good();
        bad.valu_busy_pct = f64::NAN;
        let (_, c) = s.sanitize("k", 1, cfg, Seconds(0.01), bad, &trace);
        assert_eq!(c.valu_busy_pct, 60.0);
        assert_eq!(s.rejects(), 1);
        let ev = trace.events();
        assert!(matches!(&ev[0], TraceEvent::SanitizerReject { field, .. } if field == "valu_busy_pct"));
    }

    #[test]
    fn nan_without_history_clamps_into_range() {
        let mut s = sanitizer();
        let trace = TraceHandle::disabled();
        let mut bad = good();
        bad.mem_unit_busy_pct = f64::INFINITY;
        bad.achieved_bw_gbps = f64::NAN;
        let (_, c) = s.sanitize("k", 0, HwConfig::max_hd7970(), Seconds(0.01), bad, &trace);
        assert!(c.mem_unit_busy_pct.is_finite());
        assert!((0.0..=100.0).contains(&c.mem_unit_busy_pct));
        assert_eq!(c.achieved_bw_gbps, 0.0);
    }

    #[test]
    fn nan_time_is_replaced() {
        let mut s = sanitizer();
        let cfg = HwConfig::max_hd7970();
        let trace = TraceHandle::disabled();
        s.sanitize("k", 0, cfg, Seconds(0.01), good(), &trace);
        let mut bad = good();
        bad.duration = Seconds(f64::NAN);
        let (t, c) = s.sanitize("k", 1, cfg, Seconds(f64::NAN), bad, &trace);
        assert_eq!(t, Seconds(0.01));
        assert_eq!(c.duration, Seconds(0.01));
    }

    #[test]
    fn dead_sample_is_replaced_wholesale() {
        let mut s = sanitizer();
        let cfg = HwConfig::max_hd7970();
        let trace = TraceHandle::disabled();
        s.sanitize("k", 0, cfg, Seconds(0.01), good(), &trace);
        let dead = CounterSample {
            duration: Seconds(0.01),
            norm_vgpr: 0.4,
            norm_sgpr: 0.3,
            occupancy_fraction: 0.8,
            ..CounterSample::default()
        };
        let (_, c) = s.sanitize("k", 1, cfg, Seconds(0.01), dead, &trace);
        assert_eq!(c.valu_insts, good().valu_insts, "dynamic counters restored");
        assert_eq!(c.valu_busy_pct, good().valu_busy_pct);
    }

    #[test]
    fn spike_with_multiple_bad_fields_restores_whole_sample() {
        let mut s = sanitizer();
        let cfg = HwConfig::max_hd7970();
        let trace = TraceHandle::disabled();
        for i in 0..6 {
            s.sanitize("k", i, cfg, Seconds(0.01), good(), &trace);
        }
        let mut spiked = good();
        spiked.valu_busy_pct *= 6.0;
        spiked.mem_unit_busy_pct *= 6.0;
        spiked.valu_insts *= 6;
        let (_, c) = s.sanitize("k", 6, cfg, Seconds(0.01), spiked, &trace);
        assert_eq!(c, good(), "cross-field corruption restores the last good sample");
    }

    #[test]
    fn outlier_stats_reset_on_config_change() {
        let mut s = sanitizer();
        let trace = TraceHandle::disabled();
        let a = HwConfig::max_hd7970();
        let b = a.step_down(harmonia_types::Tunable::MemFreq).unwrap();
        for i in 0..8 {
            s.sanitize("k", i, a, Seconds(0.01), good(), &trace);
        }
        // After a config change the first sample at the new point may shift
        // arbitrarily without tripping the (disarmed) outlier stage.
        let mut shifted = good();
        shifted.valu_busy_pct = 5.0;
        let (_, c) = s.sanitize("k", 8, b, Seconds(0.01), shifted, &trace);
        assert_eq!(c.valu_busy_pct, 5.0);
        assert_eq!(s.rejects(), 0);
    }

    #[test]
    fn counters_plausible_flags_garbage() {
        assert!(counters_plausible(&good()));
        let mut bad = good();
        bad.valu_busy_pct = 120.0;
        assert!(!counters_plausible(&bad));
        let mut nan = good();
        nan.dram_bytes = f64::NAN;
        assert!(!counters_plausible(&nan));
        let mut glitch = good();
        glitch.duration = Seconds(f64::NAN);
        assert!(!counters_plausible(&glitch));
    }

    fn dead() -> CounterSample {
        CounterSample {
            duration: Seconds(0.01),
            norm_vgpr: 0.4,
            norm_sgpr: 0.3,
            occupancy_fraction: 0.8,
            ..CounterSample::default()
        }
    }

    #[test]
    fn persistent_dead_counters_escalate_after_hold_bound() {
        let mut s = sanitizer();
        let cfg = HwConfig::max_hd7970();
        let trace = TraceHandle::new();
        s.sanitize("k", 0, cfg, Seconds(0.01), good(), &trace);
        // The first hold_bound-1 consecutive holds bridge from last-good...
        for i in 1..6 {
            let (_, c) = s.sanitize("k", i, cfg, Seconds(0.01), dead(), &trace);
            assert!(!dead_sample(&c), "sample {i} bridged from last-good");
        }
        // ...then the sanitizer stops masking: the substitute is finite and
        // in-range but recognizably dead, so the watchdog can trip.
        let (_, c) = s.sanitize("k", 6, cfg, Seconds(0.01), dead(), &trace);
        assert!(dead_sample(&c), "escalated sample reads as dead");
        assert!(counters_plausible(&c), "escalated sample stays in range");
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::SanitizerEscalated { held: 6, .. })));
        // The fault persists: escalation continues, it does not re-bridge.
        let (_, c) = s.sanitize("k", 7, cfg, Seconds(0.01), dead(), &trace);
        assert!(dead_sample(&c));
    }

    #[test]
    fn clean_sample_resets_the_hold_streak() {
        let mut s = sanitizer();
        let cfg = HwConfig::max_hd7970();
        let trace = TraceHandle::disabled();
        s.sanitize("k", 0, cfg, Seconds(0.01), good(), &trace);
        for i in 1..5 {
            s.sanitize("k", i, cfg, Seconds(0.01), dead(), &trace);
        }
        // Recovery: one clean sample resets the streak...
        s.sanitize("k", 5, cfg, Seconds(0.01), good(), &trace);
        // ...so five more holds still bridge instead of escalating.
        for i in 6..11 {
            let (_, c) = s.sanitize("k", i, cfg, Seconds(0.01), dead(), &trace);
            assert!(!dead_sample(&c), "sample {i} bridged after reset");
        }
    }

    #[test]
    fn dead_sample_detector() {
        assert!(!dead_sample(&good()));
        let dead = CounterSample {
            duration: Seconds(0.01),
            norm_vgpr: 0.4,
            ..CounterSample::default()
        };
        assert!(dead_sample(&dead));
    }
}
