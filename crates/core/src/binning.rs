//! Sensitivity binning (Section 5.2).
//!
//! "Sensitivity is computed for each tunable ... and binned into three bins
//! of high, medium, and low ... the three bins are set to `<30%`, `30%-70%`,
//! and `>70%`". Each bin maps to an empirically fixed proportional value of
//! the tunable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Lower edge of the MED bin.
pub const MED_THRESHOLD: f64 = 0.30;
/// Lower edge of the HIGH bin.
pub const HIGH_THRESHOLD: f64 = 0.70;

/// A binned sensitivity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SensitivityBin {
    /// Sensitivity below 30%: the tunable can be set low.
    Low,
    /// Sensitivity between 30% and 70%.
    Med,
    /// Sensitivity above 70%: the tunable must stay high.
    High,
}

impl SensitivityBin {
    /// Bins a raw sensitivity value. Negative sensitivities (more resource
    /// hurts, e.g. cache thrashing) bin as `Low` — the resource should be
    /// reduced.
    pub fn from_sensitivity(s: f64) -> Self {
        if s > HIGH_THRESHOLD {
            SensitivityBin::High
        } else if s >= MED_THRESHOLD {
            SensitivityBin::Med
        } else {
            SensitivityBin::Low
        }
    }

    /// The empirically fixed tunable fraction this bin maps to in the CG
    /// step (0.0 = grid minimum, 1.0 = grid maximum).
    ///
    /// The values are deliberately conservative (0.5/0.75/1.0): CG only
    /// brings the configuration to the *vicinity* of the balance point —
    /// sensitivity is measured around the current operating point and grows
    /// as a tunable approaches the knee, so overshooting costs performance
    /// that the FG loop would have to claw back one step per iteration.
    pub fn tunable_fraction(self) -> f64 {
        match self {
            SensitivityBin::Low => 0.50,
            SensitivityBin::Med => 0.75,
            SensitivityBin::High => 1.0,
        }
    }
}

impl fmt::Display for SensitivityBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SensitivityBin::Low => "LOW",
            SensitivityBin::Med => "MED",
            SensitivityBin::High => "HIGH",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_paper() {
        assert_eq!(SensitivityBin::from_sensitivity(0.29), SensitivityBin::Low);
        assert_eq!(SensitivityBin::from_sensitivity(0.30), SensitivityBin::Med);
        assert_eq!(SensitivityBin::from_sensitivity(0.70), SensitivityBin::Med);
        assert_eq!(SensitivityBin::from_sensitivity(0.71), SensitivityBin::High);
    }

    #[test]
    fn negative_sensitivity_is_low() {
        assert_eq!(SensitivityBin::from_sensitivity(-0.4), SensitivityBin::Low);
    }

    #[test]
    fn fractions_are_ordered() {
        assert!(SensitivityBin::Low.tunable_fraction() < SensitivityBin::Med.tunable_fraction());
        assert!(SensitivityBin::Med.tunable_fraction() < SensitivityBin::High.tunable_fraction());
        assert_eq!(SensitivityBin::High.tunable_fraction(), 1.0);
    }

    #[test]
    fn bins_are_ordered_and_display() {
        assert!(SensitivityBin::Low < SensitivityBin::Med);
        assert!(SensitivityBin::Med < SensitivityBin::High);
        assert_eq!(SensitivityBin::High.to_string(), "HIGH");
    }
}
