//! The monitoring/decision runtime (Section 5.1).
//!
//! [`Runtime::run`] executes an [`Application`] under a [`Governor`]: for
//! every kernel invocation it asks the governor for a configuration, runs
//! the timing model, evaluates the power model over the resulting activity,
//! accumulates energy/time/residency, and feeds the counters back to the
//! governor — the paper's monitoring block operating at kernel boundaries.

use crate::governor::Governor;
use crate::metrics::{InvocationRecord, KernelReport, Residency, RunReport};
use crate::telemetry::{TraceEvent, TraceHandle};
use harmonia_power::{Activity, PowerModel, PowerTrace};
use harmonia_rr::{Recorder, ReplayedActuation, Replayer, SessionEvent};
use harmonia_sim::faults::{ActuationOutcome, FaultKind, FaultPlan};
use harmonia_sim::TimingModel;
use harmonia_types::{HwConfig, Joules, Seconds, Session};
use harmonia_workloads::Application;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// DAQ sampling rate for the telemetry power trace (the paper's 1 kHz).
const POWER_SAMPLE_HZ: f64 = 1000.0;

/// Retry/backoff policy for the reliable-actuation shim
/// ([`Runtime::with_actuator`]).
///
/// Transient DPM faults (denied or delayed DVFS requests) are retried with
/// exponential backoff: retry *k* (1-based) waits `base_backoff_us << (k-1)`
/// virtual microseconds. The shim times out when either the retry count or
/// the cumulative backoff budget is exhausted, holding the last-known-good
/// configuration. The backoff delays are bookkeeping for the timeout
/// budget, not simulated time — DPM transition latency sits far below the
/// kernel-boundary granularity the runtime models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in virtual microseconds.
    pub base_backoff_us: u64,
    /// Cumulative backoff budget; exceeding it is a timeout.
    pub timeout_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_backoff_us: 50,
            timeout_us: 2_000,
        }
    }
}

/// Terminal verdict of the retry shim for one invocation, when at least
/// one attempt was perturbed.
struct ResolvedActuation {
    outcome: ActuationOutcome,
    attempts: u32,
    kinds: Vec<FaultKind>,
    actual: HwConfig,
}

/// What the actuation stage decided for one invocation.
enum Actuation {
    /// No fault fired; the decided configuration took effect.
    Clean,
    /// Single-shot fault path (no retry shim): one fault perturbed the
    /// transition.
    Fault { kind: FaultKind, actual: HwConfig },
    /// Retry-shim path: a terminal outcome after one or more perturbed
    /// attempts.
    Resolved(ResolvedActuation),
}

/// Executes applications on a timing model and power model under a governor.
pub struct Runtime<'a> {
    model: &'a dyn TimingModel,
    power: &'a PowerModel,
    keep_trace: bool,
    telemetry: TraceHandle,
    /// Actuator-fault plan: DVFS denials/delays/neighbor transitions and
    /// thermal throttling applied between the decision and the invocation.
    faults: Option<&'a FaultPlan>,
    /// Session recorder: decisions, actuation outcomes, raw samples,
    /// sanitizer substitutions, and run totals, in execution order.
    recorder: Option<Recorder>,
    /// Session replayer: actuation outcomes come from the trace instead of
    /// the fault plan (samples are served by a `ReplayModel`).
    replay: Option<Replayer>,
    /// Reliable-actuation shim: retry transient DPM faults with backoff
    /// instead of accepting the first perturbed outcome.
    actuator: Option<RetryPolicy>,
}

impl<'a> Runtime<'a> {
    /// Creates a runtime over the given models (full traces kept),
    /// configured from the process environment — equivalent to
    /// [`from_session`](Self::from_session) with [`Session::from_env`]:
    /// decision telemetry is disabled unless `HARMONIA_TRACE=1`.
    pub fn new(model: &'a dyn TimingModel, power: &'a PowerModel) -> Self {
        Self::from_session(model, power, &Session::from_env())
    }

    /// Creates a runtime configured by an explicit [`Session`] (full traces
    /// kept): decision telemetry is enabled iff `session.trace()`.
    pub fn from_session(
        model: &'a dyn TimingModel,
        power: &'a PowerModel,
        session: &Session,
    ) -> Self {
        Self {
            model,
            power,
            keep_trace: true,
            telemetry: if session.trace() {
                TraceHandle::new()
            } else {
                TraceHandle::disabled()
            },
            faults: None,
            recorder: None,
            replay: None,
            actuator: None,
        }
    }

    /// Disables per-invocation trace recording (large sweeps).
    pub fn without_trace(mut self) -> Self {
        self.keep_trace = false;
        self
    }

    /// Applies `plan`'s actuator faults between the governor's decision and
    /// each invocation: transitions may be denied, land a step away, or be
    /// throttled, and the governor observes the configuration that actually
    /// ran. An empty plan leaves the runtime byte-identical to the clean
    /// path. Counter faults belong on the model side
    /// ([`FaultyModel`](harmonia_sim::FaultyModel), same plan).
    pub fn with_faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Records the session into `recorder`: every governor decision,
    /// actuator-fault outcome, raw composite sample, sanitizer substitution,
    /// and the run totals, in execution order — the full-nondeterminism
    /// record a [`Replayer`] re-executes bit-exactly. The caller typically
    /// records the `SessionStart` header itself before running (the runtime
    /// does not know the registry policy name). Zero-cost when absent.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Replays actuator-fault outcomes from a recorded session instead of
    /// rolling them from a fault plan; takes precedence over
    /// [`with_faults`](Self::with_faults). Counter samples are replayed on
    /// the model side: pair this with a
    /// [`ReplayModel`](harmonia_rr::ReplayModel) sharing the same
    /// [`Replayer`] cursor.
    pub fn with_replay(mut self, replay: Replayer) -> Self {
        self.replay = Some(replay);
        self
    }

    /// Turns DPM faults into a deterministic retry-with-backoff state
    /// machine instead of accepting the first perturbed outcome. Transient
    /// faults (denied/delayed requests) are retried under `policy` and
    /// resolve to [`ActuationOutcome::Retried`] on success or
    /// [`ActuationOutcome::TimedOut`] (configuration held at last-good)
    /// when the budget runs out; a partial transition (neighbor landing)
    /// is rolled back to last-good
    /// ([`ActuationOutcome::RolledBack`]); a thermal clamp is terminal and
    /// resolves [`ActuationOutcome::Applied`] at the clamped point. Every
    /// perturbed attempt emits telemetry, and the terminal verdict is
    /// recorded in the session trace (v2 vocabulary). Without
    /// [`with_faults`](Self::with_faults) the shim never engages, keeping
    /// default-path traces byte-identical.
    pub fn with_actuator(mut self, policy: RetryPolicy) -> Self {
        self.actuator = Some(policy);
        self
    }

    /// Installs an explicit decision-telemetry handle. The same handle is
    /// passed to the governor of every subsequent [`run`](Self::run), so
    /// runtime events (kernel boundaries, power samples) and governor events
    /// (CG/FG decisions) interleave in one stream.
    pub fn with_telemetry(mut self, telemetry: TraceHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The decision-telemetry handle in use.
    pub fn telemetry(&self) -> &TraceHandle {
        &self.telemetry
    }

    /// The timing model in use.
    pub fn model(&self) -> &dyn TimingModel {
        self.model
    }

    /// The power model in use.
    pub fn power(&self) -> &PowerModel {
        self.power
    }

    /// Drives one invocation's configuration transition through the retry
    /// state machine. `None` when the first attempt applied cleanly — the
    /// overwhelmingly common case, and the one that must leave the session
    /// trace untouched.
    fn resolve_actuation(
        &self,
        plan: &FaultPlan,
        policy: RetryPolicy,
        kernel: &str,
        decided: HwConfig,
        previous: Option<HwConfig>,
        iteration: u64,
    ) -> Option<ResolvedActuation> {
        let mut kinds: Vec<FaultKind> = Vec::new();
        let mut attempts: u32 = 0;
        let mut backoff_spent: u64 = 0;
        loop {
            let ordinal = attempts;
            attempts += 1;
            let Some((kind, actual)) = plan.actuate_attempt_on(
                &self.model.gpu().grid,
                kernel,
                decided,
                previous,
                iteration,
                ordinal,
            ) else {
                // This attempt went through cleanly.
                return (!kinds.is_empty()).then(|| ResolvedActuation {
                    outcome: ActuationOutcome::Retried(attempts - 1),
                    attempts,
                    kinds,
                    actual: decided,
                });
            };
            kinds.push(kind);
            self.telemetry.emit(|| TraceEvent::ActuationAttempt {
                kernel: kernel.to_string(),
                iteration,
                attempt: ordinal,
                kind: kind.label().to_string(),
                wanted: decided.into(),
                actual: actual.into(),
            });
            match kind {
                // A thermal clamp is the platform's last word: the
                // transition completed, at the ceiling it imposed.
                FaultKind::ThermalThrottle => {
                    return Some(ResolvedActuation {
                        outcome: ActuationOutcome::Applied,
                        attempts,
                        kinds,
                        actual,
                    });
                }
                // A neighbor landing is a *partial* application: part of
                // the multi-tunable transition applied, part did not.
                // Retrying from an unknown intermediate state is worse
                // than restoring a coherent one, so roll back to the
                // last-known-good configuration. At session start there
                // is no last-good anchor and the partial point stands.
                FaultKind::DvfsNeighbor => {
                    return Some(ResolvedActuation {
                        outcome: ActuationOutcome::RolledBack,
                        attempts,
                        kinds,
                        actual: previous.unwrap_or(actual),
                    });
                }
                // Denied or delayed requests are transient: back off and
                // retry until either budget runs dry.
                _ => {
                    let retries = attempts - 1;
                    // Delay before retry k (1-based) is base << (k-1); the
                    // next retry is number `retries + 1`.
                    let delay = policy.base_backoff_us.checked_shl(retries).unwrap_or(u64::MAX);
                    let over_budget = retries >= policy.max_retries
                        || backoff_spent.saturating_add(delay) > policy.timeout_us;
                    if over_budget {
                        return Some(ResolvedActuation {
                            outcome: ActuationOutcome::TimedOut,
                            attempts,
                            kinds,
                            actual,
                        });
                    }
                    backoff_spent = backoff_spent.saturating_add(delay);
                }
            }
        }
    }

    /// Runs `app` to completion under `governor` and reports.
    pub fn run(&self, app: &Application, governor: &mut dyn Governor) -> RunReport {
        let mut total_time = Seconds(0.0);
        let mut card_energy = Joules(0.0);
        let mut gpu_energy = Joules(0.0);
        let mut mem_energy = Joules(0.0);
        let mut residency = Residency::new();
        let mut trace = Vec::new();
        let mut per_kernel: BTreeMap<Arc<str>, KernelReport> = BTreeMap::new();
        // Intern each kernel name once; records and reports then share the
        // allocation via refcount bumps instead of per-invocation clones.
        let names: Vec<Arc<str>> = app
            .kernels
            .iter()
            .map(|k| Arc::from(k.name.as_str()))
            .collect();

        governor.set_trace(self.telemetry.clone());
        self.telemetry.emit(|| TraceEvent::RunStart {
            app: app.name.clone(),
            governor: governor.name().to_string(),
        });
        // The virtual DAQ accumulates segments only while telemetry is
        // enabled; sampled at POWER_SAMPLE_HZ after the run.
        let mut daq = self.telemetry.enabled().then(PowerTrace::new);
        // Configuration each kernel actually ran at last, for actuator
        // faults that hold the previous state.
        let mut last_actual: HashMap<Arc<str>, HwConfig> = HashMap::new();

        for iteration in 0..app.iterations {
            for (kernel, name) in app.kernels.iter().zip(&names) {
                let decided = governor.decide(kernel, iteration);
                if let Some(rec) = &self.recorder {
                    rec.record(SessionEvent::Decision {
                        kernel: kernel.name.clone(),
                        iteration,
                        cfg: decided.into(),
                    });
                }
                // Between decision and invocation sits the only actuation
                // nondeterminism: either a replayed outcome (trace playback)
                // or a fault-plan roll (live) — single-shot, or driven
                // through the retry shim. Both paths record and emit
                // identically, so a replayed session re-produces the
                // recording bit for bit.
                let actuation = match (&self.replay, self.faults) {
                    (Some(rep), _) => match rep.actuation_event_for(&kernel.name, iteration) {
                        Some(ReplayedActuation::Fault { kind, actual }) if actual != decided => {
                            Actuation::Fault { kind, actual }
                        }
                        Some(ReplayedActuation::Resolved { outcome, attempts, kinds, actual }) => {
                            Actuation::Resolved(ResolvedActuation {
                                outcome,
                                attempts,
                                kinds,
                                actual,
                            })
                        }
                        _ => Actuation::Clean,
                    },
                    (None, Some(plan)) if !plan.is_empty() => {
                        let previous = last_actual.get(name).copied();
                        match self.actuator {
                            Some(policy) => self
                                .resolve_actuation(
                                    plan,
                                    policy,
                                    &kernel.name,
                                    decided,
                                    previous,
                                    iteration,
                                )
                                .map_or(Actuation::Clean, Actuation::Resolved),
                            None => plan
                                .actuate_attempt_on(
                                    &self.model.gpu().grid,
                                    &kernel.name,
                                    decided,
                                    previous,
                                    iteration,
                                    0,
                                )
                                .filter(|&(_, actual)| actual != decided)
                                .map_or(Actuation::Clean, |(kind, actual)| Actuation::Fault {
                                    kind,
                                    actual,
                                }),
                        }
                    }
                    _ => Actuation::Clean,
                };
                let cfg = match actuation {
                    Actuation::Fault { kind, actual } => {
                        self.telemetry.emit(|| TraceEvent::FaultInjected {
                            kernel: kernel.name.clone(),
                            iteration,
                            kind: kind.label().to_string(),
                            wanted: decided.into(),
                            actual: actual.into(),
                        });
                        if let Some(rec) = &self.recorder {
                            rec.record(SessionEvent::Actuation {
                                kernel: kernel.name.clone(),
                                iteration,
                                kind,
                                wanted: decided.into(),
                                actual: actual.into(),
                            });
                        }
                        actual
                    }
                    Actuation::Resolved(res) => {
                        self.telemetry.emit(|| TraceEvent::ActuationResolved {
                            kernel: kernel.name.clone(),
                            iteration,
                            outcome: res.outcome.label().to_string(),
                            attempts: res.attempts,
                            wanted: decided.into(),
                            actual: res.actual.into(),
                        });
                        if let Some(rec) = &self.recorder {
                            rec.record(SessionEvent::ActuationResolved {
                                kernel: kernel.name.clone(),
                                iteration,
                                outcome: res.outcome,
                                attempts: res.attempts,
                                kinds: res.kinds.clone(),
                                wanted: decided.into(),
                                actual: res.actual.into(),
                            });
                        }
                        res.actual
                    }
                    Actuation::Clean => decided,
                };
                if self.faults.is_some() {
                    last_actual.insert(name.clone(), cfg);
                }
                self.telemetry.emit(|| TraceEvent::KernelStart {
                    kernel: kernel.name.clone(),
                    iteration,
                    cfg: cfg.into(),
                });
                let result = self.model.simulate(cfg, kernel, iteration);
                if let Some(rec) = &self.recorder {
                    rec.record(SessionEvent::Sample {
                        kernel: kernel.name.clone(),
                        iteration,
                        cfg: cfg.into(),
                        time_s: result.time.value(),
                        counters: result.counters,
                        stepped_waves: result.fast_forward.stepped_waves,
                        fast_forwarded_waves: result.fast_forward.fast_forwarded_waves,
                    });
                }
                // The governor stack conditions the raw measurement first
                // (identity unless a sanitize layer is stacked): power and
                // energy are accounted from what the stack accepted, never
                // from readings it rejected.
                let (time, counters) =
                    governor.condition(kernel, iteration, cfg, result.time, result.counters);
                if let Some(rec) = &self.recorder {
                    // Sanitizer substitutions are part of the session record;
                    // bitwise comparison so a NaN-for-NaN identity pass
                    // records nothing.
                    if time.value().to_bits() != result.time.value().to_bits()
                        || !harmonia_rr::counters_eq(&counters, &result.counters)
                    {
                        rec.record(SessionEvent::Conditioned {
                            kernel: kernel.name.clone(),
                            iteration,
                            time_s: time.value(),
                            counters,
                        });
                    }
                }
                let activity = Activity {
                    valu_activity: counters.valu_activity(),
                    dram_bytes_per_sec: counters.dram_bytes_per_sec(),
                    dram_traffic_fraction: counters.ic_activity,
                };
                let breakdown = self.power.breakdown(cfg, &activity);

                let dt = time;
                total_time += dt;
                card_energy += breakdown.card_pwr() * dt;
                gpu_energy += breakdown.gpu_pwr() * dt;
                mem_energy += breakdown.mem_pwr() * dt;
                residency.record(cfg, dt);
                self.telemetry.emit(|| TraceEvent::KernelEnd {
                    kernel: kernel.name.clone(),
                    iteration,
                    cfg: cfg.into(),
                    time_s: dt.value(),
                    card_w: breakdown.card_pwr().value(),
                    gpu_w: breakdown.gpu_pwr().value(),
                    mem_w: breakdown.mem_pwr().value(),
                    counters,
                });
                if !result.fast_forward.is_exact() {
                    self.telemetry.emit(|| TraceEvent::FastForward {
                        kernel: kernel.name.clone(),
                        iteration,
                        stepped_waves: result.fast_forward.stepped_waves,
                        fast_forwarded_waves: result.fast_forward.fast_forwarded_waves,
                    });
                }
                if let Some(daq) = &mut daq {
                    daq.push(dt, breakdown);
                }

                let entry = per_kernel
                    .entry(name.clone())
                    .or_insert_with(|| KernelReport {
                        kernel: name.clone(),
                        invocations: 0,
                        total_time: Seconds(0.0),
                        card_energy: Joules(0.0),
                    });
                entry.invocations += 1;
                entry.total_time += dt;
                entry.card_energy += breakdown.card_pwr() * dt;

                if self.keep_trace {
                    trace.push(InvocationRecord {
                        kernel: name.clone(),
                        iteration,
                        cfg,
                        time: dt,
                        card_power: breakdown.card_pwr(),
                        gpu_power: breakdown.gpu_pwr(),
                        mem_power: breakdown.mem_pwr(),
                        valu_busy_pct: counters.valu_busy_pct,
                    });
                }

                governor.observe(kernel, iteration, cfg, &counters);
            }
        }

        if let Some(daq) = &daq {
            for s in daq.sample(POWER_SAMPLE_HZ) {
                self.telemetry.emit(|| TraceEvent::PowerSample {
                    at_s: s.at.value(),
                    card_w: s.card.value(),
                    gpu_w: s.gpu.value(),
                    mem_w: s.mem.value(),
                });
            }
        }
        self.telemetry.emit(|| TraceEvent::RunEnd {
            app: app.name.clone(),
            governor: governor.name().to_string(),
            total_time_s: total_time.value(),
            card_energy_j: card_energy.value(),
        });
        if let Some(rec) = &self.recorder {
            rec.record(SessionEvent::SessionEnd {
                total_time_s: total_time.value(),
                card_energy_j: card_energy.value(),
                gpu_energy_j: gpu_energy.value(),
                mem_energy_j: mem_energy.value(),
            });
        }

        RunReport {
            app: app.name.clone(),
            governor: governor.name().to_string(),
            total_time,
            card_energy,
            gpu_energy,
            mem_energy,
            per_kernel: per_kernel.into_values().collect(),
            residency,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{BaselineGovernor, HarmoniaGovernor, OracleGovernor};
    use crate::predictor::SensitivityPredictor;
    use harmonia_sim::IntervalModel;
    use harmonia_types::Tunable;
    use harmonia_workloads::suite;

    fn harness() -> (IntervalModel, PowerModel) {
        (IntervalModel::default(), PowerModel::hd7970())
    }

    #[test]
    fn baseline_runs_everything_at_boost() {
        let (model, power) = harness();
        let rt = Runtime::new(&model, &power);
        let app = suite::stencil();
        let report = rt.run(&app, &mut BaselineGovernor::new());
        assert_eq!(report.governor, "baseline");
        assert_eq!(report.trace.len() as u64, app.total_invocations());
        assert!((report.residency.fraction(Tunable::CuFreq, 1000) - 1.0).abs() < 1e-12);
        assert!(report.total_time.value() > 0.0);
        assert!(report.card_energy.value() > 0.0);
        // Energy decomposes.
        let parts = report.gpu_energy.value() + report.mem_energy.value();
        assert!(parts < report.card_energy.value());
    }

    #[test]
    fn per_kernel_reports_cover_all_kernels() {
        let (model, power) = harness();
        let rt = Runtime::new(&model, &power);
        let app = suite::sort();
        let report = rt.run(&app, &mut BaselineGovernor::new());
        assert_eq!(report.per_kernel.len(), app.kernels.len());
        for k in &app.kernels {
            let kr = report.kernel_report(&k.name).unwrap();
            assert_eq!(kr.invocations, app.iterations);
        }
    }

    #[test]
    fn harmonia_beats_baseline_ed2_on_stress_kernels() {
        let (model, power) = harness();
        let rt = Runtime::new(&model, &power);
        // Train the predictor on the simulator, as the evaluation pipeline
        // does — the published Table 3 coefficients describe the authors'
        // silicon, not this model.
        let data = crate::dataset::TrainingSet::collect(&model);
        let predictor = SensitivityPredictor::fit(&data).expect("fit");
        for app in [suite::maxflops(), suite::sort(), suite::bpt()] {
            let base = rt.run(&app, &mut BaselineGovernor::new());
            let mut hm = HarmoniaGovernor::new(predictor.clone());
            let harmonia = rt.run(&app, &mut hm);
            assert!(
                harmonia.ed2() < base.ed2() * 1.02,
                "{}: harmonia ED² {} vs baseline {}",
                app.name,
                harmonia.ed2(),
                base.ed2()
            );
        }
    }

    #[test]
    fn oracle_is_at_least_as_good_as_baseline() {
        let (model, power) = harness();
        let rt = Runtime::new(&model, &power).without_trace();
        for app in [suite::maxflops(), suite::stencil()] {
            let base = rt.run(&app, &mut BaselineGovernor::new());
            let mut oracle = OracleGovernor::new(&model, &power);
            let orc = rt.run(&app, &mut oracle);
            assert!(
                orc.ed2() <= base.ed2() * 1.0001,
                "{}: oracle ED² {} vs baseline {}",
                app.name,
                orc.ed2(),
                base.ed2()
            );
        }
    }

    #[test]
    fn retry_actuator_resolves_transient_faults_and_replays_bit_exactly() {
        use harmonia_rr::{decode, Recorder, ReplayModel, Replayer};
        use harmonia_sim::faults::FaultSpec;

        let (model, power) = harness();
        let app = suite::sort();
        // Heavy transient pressure plus occasional partial transitions so
        // every outcome class shows up deterministically from the seed.
        let plan = FaultPlan::new(0xACDC)
            .with(FaultSpec::new(FaultKind::DvfsDeny, 0.4))
            .with(FaultSpec::new(FaultKind::DvfsNeighbor, 0.1));
        let recorder = Recorder::new();
        let rt = Runtime::new(&model, &power)
            .with_faults(&plan)
            .with_actuator(RetryPolicy::default())
            .with_recorder(recorder.clone());
        let live = rt.run(&app, &mut BaselineGovernor::new());
        let events = recorder.events();
        let resolved: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, SessionEvent::ActuationResolved { .. }))
            .collect();
        assert!(
            !resolved.is_empty(),
            "a 40% transient fault rate must engage the retry shim"
        );
        // The v2 stream round-trips through the codec.
        let bytes = recorder.encode();
        assert_eq!(decode(&bytes).expect("decodes"), events);

        // Replay: resolved actuations come from the trace, samples from a
        // replay model, and the re-recording matches bit for bit.
        let replayer = Replayer::new(events.clone());
        let replay_model = ReplayModel::new(replayer.clone(), *model.gpu());
        let re_recorder = Recorder::new();
        let rt2 = Runtime::new(&replay_model, &power)
            .with_replay(replayer.clone())
            .with_recorder(re_recorder.clone());
        let replayed = rt2.run(&app, &mut BaselineGovernor::new());
        assert!(replayer.error().is_none(), "{:?}", replayer.error());
        assert_eq!(re_recorder.events(), events, "replay must re-record bit-exactly");
        assert_eq!(
            replayed.card_energy.value().to_bits(),
            live.card_energy.value().to_bits()
        );
    }

    #[test]
    fn retry_actuator_times_out_deterministically_under_a_sure_deny() {
        use harmonia_sim::faults::FaultSpec;

        let (model, power) = harness();
        let app = suite::stencil();
        let plan = FaultPlan::new(7).with(FaultSpec::new(FaultKind::DvfsDeny, 1.0));
        let recorder = harmonia_rr::Recorder::new();
        let policy = RetryPolicy { max_retries: 2, base_backoff_us: 50, timeout_us: 2_000 };
        let rt = Runtime::new(&model, &power)
            .with_faults(&plan)
            .with_actuator(policy)
            .with_recorder(recorder.clone());
        rt.run(&app, &mut BaselineGovernor::new());
        let mut timed_out = 0;
        for e in recorder.events() {
            if let SessionEvent::ActuationResolved { outcome, attempts, kinds, .. } = e {
                assert_eq!(outcome, ActuationOutcome::TimedOut);
                assert_eq!(attempts, 1 + policy.max_retries);
                assert_eq!(kinds.len(), attempts as usize);
                timed_out += 1;
            }
        }
        assert!(timed_out > 0, "p=1.0 denial must time out every invocation");
    }

    #[test]
    fn without_trace_keeps_aggregates() {
        let (model, power) = harness();
        let rt = Runtime::new(&model, &power).without_trace();
        let app = suite::stencil();
        let report = rt.run(&app, &mut BaselineGovernor::new());
        assert!(report.trace.is_empty());
        assert!(report.total_time.value() > 0.0);
    }
}
