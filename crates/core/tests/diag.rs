//! Diagnostic sweep (run with --nocapture) used during calibration.

use harmonia::governor::{BaselineGovernor, HarmoniaConfig, HarmoniaGovernor, OracleGovernor};
use harmonia::dataset::TrainingSet;
use harmonia::metrics::improvement;
use harmonia::predictor::SensitivityPredictor;
use harmonia::runtime::Runtime;
use harmonia_power::PowerModel;
use harmonia_sim::{IntervalModel, TimingModel};
use harmonia_workloads::suite;

#[test]
#[ignore = "diagnostic only"]
fn sweep_table() {
    let model = IntervalModel::default();
    let power = PowerModel::hd7970();
    let rt = Runtime::new(&model, &power).without_trace();
    let data = TrainingSet::collect(&model);
    let trained = SensitivityPredictor::fit(&data).unwrap();
    println!(
        "trained R: bw={:.3} cu={:.3} freq={:.3}; MAE bw={:.4} cu={:.4} freq={:.4}",
        trained.bandwidth.multiple_r,
        trained.cu.multiple_r,
        trained.freq.multiple_r,
        trained.mean_abs_error(&data).bandwidth,
        trained.mean_abs_error(&data).cu,
        trained.mean_abs_error(&data).freq
    );
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app", "ed2 CG", "ed2 HM", "ed2 OR", "perfCG", "perfHM", "pwrHM", "enHM"
    );
    for app in suite::all() {
        let base = rt.run(&app, &mut BaselineGovernor::new());
        let mut cg = HarmoniaGovernor::with_config(trained.clone(), HarmoniaConfig::cg_only());
        let cgr = rt.run(&app, &mut cg);
        let mut hm = HarmoniaGovernor::new(trained.clone());
        let hmr = rt.run(&app, &mut hm);
        let mut orc = OracleGovernor::new(&model, &power);
        let or = rt.run(&app, &mut orc);
        println!(
            "{:<14} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            app.name,
            improvement(base.ed2(), cgr.ed2()) * 100.0,
            improvement(base.ed2(), hmr.ed2()) * 100.0,
            improvement(base.ed2(), or.ed2()) * 100.0,
            improvement(base.total_time.value(), cgr.total_time.value()) * 100.0,
            improvement(base.total_time.value(), hmr.total_time.value()) * 100.0,
            improvement(base.avg_power().value(), hmr.avg_power().value()) * 100.0,
            improvement(base.card_energy.value(), hmr.card_energy.value()) * 100.0,
        );
        for (_, k) in app
            .kernels
            .iter()
            .map(|k| ((), k))
        {
            let s = harmonia::sensitivity::Sensitivity::measure(&model, k);
            let row = data.rows.iter().find(|r| r.kernel == k.name).unwrap();
            let p = trained.predict(&row.counters);
            println!(
                "    {:<28} meas(cu={:+.2} f={:+.2} b={:+.2}) pred(cu={:+.2} f={:+.2} b={:+.2})",
                k.name, s.cu, s.freq, s.bandwidth, p.cu, p.freq, p.bandwidth
            );
        }
    }
}

#[test]
#[ignore = "diagnostic only"]
fn trace_app() {
    let model = IntervalModel::default();
    let power = PowerModel::hd7970();
    let rt = Runtime::new(&model, &power);
    let data = TrainingSet::collect(&model);
    let trained = SensitivityPredictor::fit(&data).unwrap();
    let name = std::env::var("APP").unwrap_or_else(|_| "SRAD".into());
    let app = suite::by_name(&name).unwrap();
    let mut hm = HarmoniaGovernor::new(trained.clone());
    let r = rt.run(&app, &mut hm);
    let base = rt.run(&app, &mut BaselineGovernor::new());
    for rec in &r.trace {
        println!(
            "it{:02} {:<26} cu={:>2} f={:>4} m={:>4} t={:>9.4}ms p={:>6.1}W busy={:>5.1}",
            rec.iteration,
            rec.kernel,
            rec.cfg.compute.cu_count(),
            rec.cfg.compute.freq().value(),
            rec.cfg.memory.bus_freq().value(),
            rec.time.value() * 1e3,
            rec.card_power.value(),
            rec.valu_busy_pct
        );
    }
    println!(
        "HM: t={:.3}ms E={:.2}J | base t={:.3}ms E={:.2}J | dED2={:.1}%",
        r.total_time.value() * 1e3,
        r.card_energy.value(),
        base.total_time.value() * 1e3,
        base.card_energy.value(),
        improvement(base.ed2(), r.ed2()) * 100.0
    );
}

#[test]
#[ignore = "diagnostic only"]
fn trace_decisions() {
    use harmonia::governor::Governor;
    let model = IntervalModel::default();
    let power = PowerModel::hd7970();
    let data = TrainingSet::collect(&model);
    let trained = SensitivityPredictor::fit(&data).unwrap();
    let name = std::env::var("APP").unwrap_or_else(|_| "LUD".into());
    let kname = std::env::var("KERNEL").unwrap_or_else(|_| "LUD.Internal".into());
    let app = suite::by_name(&name).unwrap();
    let k = app.kernel(&kname).unwrap().clone();
    let mut hm = HarmoniaGovernor::new(trained.clone());
    let _ = power;
    for i in 0..app.iterations {
        let cfg = hm.decide(&k, i);
        let r = model.simulate(cfg, &k, i);
        let pred = trained.predict(&r.counters);
        println!(
            "it{:02} cu={:>2} f={:>4} m={:>4} t={:.4}ms rate={:.3e} pred(cu={:+.2} f={:+.2} b={:+.2}) ctom={:.1} busy={:.1} membusy={:.1}",
            i,
            cfg.compute.cu_count(),
            cfg.compute.freq().value(),
            cfg.memory.bus_freq().value(),
            r.time.value() * 1e3,
            r.counters.valu_insts as f64 / r.time.value(),
            pred.cu,
            pred.freq,
            pred.bandwidth,
            r.counters.c_to_m_intensity(),
            r.counters.valu_busy_pct,
            r.counters.mem_unit_busy_pct,
        );
        hm.observe(&k, i, cfg, &r.counters);
    }
}
