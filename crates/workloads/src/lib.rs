//! The HPC/scientific workload suite of the Harmonia paper, modelled as
//! [`KernelProfile`]s.
//!
//! Section 6 selects "14 applications with many kernels": the exascale proxy
//! apps CoMD, XSBench and miniFE; Graph500; B+Tree (BPT); CFD, LUD, SRAD and
//! Streamcluster from Rodinia; and Stencil, Sort, SPMV, MaxFlops and
//! DeviceMemory from SHOC — 27 kernels in total here (the paper trains on
//! 25 kernels).
//!
//! Each kernel's parameters encode the characterization the paper reports
//! for it (occupancy limiter, divergence, instruction counts, cache
//! behaviour, phase variation); the profiles then *reproduce* those
//! behaviours through the timing models rather than asserting them.
//!
//! * [`app`] — the [`Application`] type (a named sequence of kernels run for
//!   a number of outer iterations, as HPC convergence loops do).
//! * [`suite`] — constructors for all 14 applications and the full suite.
//! * [`generator`] — randomized profile generation for property tests and
//!   robustness studies.
//!
//! # Examples
//!
//! ```
//! use harmonia_workloads::suite;
//!
//! let apps = suite::all();
//! assert_eq!(apps.len(), 14);
//! let kernels: usize = apps.iter().map(|a| a.kernels.len()).sum();
//! assert!(kernels >= 25);
//! ```

pub mod app;
pub mod generator;
pub mod probes;
pub mod suite;

pub use app::Application;
pub use harmonia_sim::{KernelProfile, PhaseModulation, PhaseScale};
