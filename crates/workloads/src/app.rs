//! The application abstraction: a named sequence of kernels invoked for a
//! number of outer iterations.
//!
//! "For applications that use iterative convergence algorithms and invoke
//! the entire application with multiple kernels multiple times, Harmonia
//! records the last best hardware configuration for all kernels within that
//! application" (Section 5.1) — so the iteration structure is part of the
//! workload model, not an experiment detail.

use harmonia_sim::KernelProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A GPU application: an ordered set of kernels executed once per outer
/// iteration, for `iterations` iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Application name, e.g. `"Sort"`.
    pub name: String,
    /// Kernels invoked (in order) each iteration.
    pub kernels: Vec<KernelProfile>,
    /// Number of outer iterations the application runs.
    pub iterations: u64,
}

impl Application {
    /// Creates an application.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty or `iterations` is zero — an application
    /// must do some work.
    pub fn new(name: impl Into<String>, kernels: Vec<KernelProfile>, iterations: u64) -> Self {
        let name = name.into();
        assert!(!kernels.is_empty(), "application {name} has no kernels");
        assert!(iterations > 0, "application {name} has zero iterations");
        Self {
            name,
            kernels,
            iterations,
        }
    }

    /// Total kernel invocations over the application's lifetime.
    pub fn total_invocations(&self) -> u64 {
        self.iterations * self.kernels.len() as u64
    }

    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelProfile> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} kernels × {} iterations)",
            self.name,
            self.kernels.len(),
            self.iterations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &str) -> KernelProfile {
        KernelProfile::builder(name).build()
    }

    #[test]
    fn construction_and_accessors() {
        let app = Application::new("demo", vec![k("demo.a"), k("demo.b")], 4);
        assert_eq!(app.total_invocations(), 8);
        assert!(app.kernel("demo.a").is_some());
        assert!(app.kernel("missing").is_none());
        assert!(app.to_string().contains("2 kernels"));
    }

    #[test]
    #[should_panic(expected = "no kernels")]
    fn empty_kernels_rejected() {
        let _ = Application::new("empty", vec![], 1);
    }

    #[test]
    #[should_panic(expected = "zero iterations")]
    fn zero_iterations_rejected() {
        let _ = Application::new("none", vec![k("none.a")], 0);
    }
}
