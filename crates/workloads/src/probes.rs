//! Synthetic probe kernels for platform characterization.
//!
//! MaxFlops and DeviceMemory are the paper's two hardware-stress probes;
//! this module generalizes them into parameterized families used to
//! characterize a platform the way Section 3 does: bandwidth ceilings,
//! latency exposure at controlled occupancy, divergence ladders, and
//! ops/byte sweeps for locating balance knees.

use harmonia_sim::KernelProfile;

/// A pure-compute probe: measures the FLOP ceiling. `intensity` scales the
/// per-item instruction count (1.0 ≈ MaxFlops).
pub fn compute_probe(intensity: f64) -> KernelProfile {
    let intensity = intensity.max(0.01);
    KernelProfile::builder(format!("probe.compute:{intensity:.2}"))
        .workitems(1 << 20)
        .vgprs(24)
        .sgprs(16)
        .valu_insts_per_item(2048.0 * intensity)
        .vfetch_insts_per_item(1.0)
        .bytes_per_fetch(4.0)
        .l1_hit_rate(0.95)
        .l2_hit_rate(0.9)
        .blocks_per_wave(4)
        .build()
}

/// A streaming-bandwidth probe: measures the achievable DRAM ceiling.
/// `bytes_per_item` controls the stream width.
pub fn bandwidth_probe(bytes_per_item: f64) -> KernelProfile {
    let bytes = bytes_per_item.max(4.0);
    KernelProfile::builder(format!("probe.bandwidth:{bytes:.0}B"))
        .workitems(1 << 22)
        .vgprs(16)
        .sgprs(16)
        .valu_insts_per_item(4.0)
        .vfetch_insts_per_item((bytes / 32.0).max(1.0))
        .bytes_per_fetch(32.0)
        .l1_hit_rate(0.0)
        .l2_hit_rate(0.0)
        .blocks_per_wave(8)
        .build()
}

/// A latency probe at controlled occupancy: `waves_per_simd` (1–10) is
/// enforced through VGPR pressure, exposing DRAM latency when hiding runs
/// out (the Figure 7 mechanism, made into a dial).
///
/// # Panics
///
/// Panics if `waves_per_simd` is outside 1..=10.
pub fn occupancy_probe(waves_per_simd: u32) -> KernelProfile {
    assert!(
        (1..=10).contains(&waves_per_simd),
        "occupancy must be 1..=10 waves/SIMD"
    );
    // VGPRs per item forcing exactly `waves` resident: floor(256 / vgprs).
    let vgprs = match waves_per_simd {
        1 => 256,
        2 => 128,
        3 => 85,
        4 => 64,
        5 => 51,
        6 => 42,
        7 => 36,
        8 => 32,
        9 => 28,
        _ => 25,
    };
    KernelProfile::builder(format!("probe.occupancy:{waves_per_simd}"))
        .workitems(1 << 21)
        .vgprs(vgprs)
        .sgprs(16)
        .valu_insts_per_item(8.0)
        .vfetch_insts_per_item(4.0)
        .bytes_per_fetch(16.0)
        .l1_hit_rate(0.05)
        .l2_hit_rate(0.1)
        .blocks_per_wave(16)
        .build()
}

/// A divergence ladder: fixed instruction budget with `divergence` of the
/// lanes masked off (the Figure 8 mechanism).
pub fn divergence_probe(divergence: f64) -> KernelProfile {
    let divergence = divergence.clamp(0.0, 0.95);
    KernelProfile::builder(format!("probe.divergence:{divergence:.2}"))
        .workitems(1 << 20)
        .vgprs(32)
        .sgprs(24)
        .valu_insts_per_item(256.0)
        .vfetch_insts_per_item(2.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(divergence)
        .l1_hit_rate(0.4)
        .l2_hit_rate(0.5)
        .build()
}

/// An ops/byte ladder for locating a platform's balance knee (Figure 3):
/// demand intensity `ops_per_byte` with a fixed streaming denominator.
pub fn balance_probe(ops_per_byte: f64) -> KernelProfile {
    let opb = ops_per_byte.max(0.05);
    let bytes_per_item = 128.0;
    KernelProfile::builder(format!("probe.balance:{opb:.2}"))
        .workitems(1 << 21)
        .vgprs(24)
        .sgprs(16)
        .valu_insts_per_item(opb * bytes_per_item)
        .vfetch_insts_per_item(4.0)
        .bytes_per_fetch(32.0)
        .l1_hit_rate(0.0)
        .l2_hit_rate(0.0)
        .blocks_per_wave(8)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::{GpuDescriptor, IntervalModel, Occupancy, TimingModel};
    use harmonia_types::{ComputeConfig, HwConfig, MegaHertz, MemoryConfig};

    fn cfg(cu: u32, f: u32, m: u32) -> HwConfig {
        HwConfig::new(
            ComputeConfig::new(cu, MegaHertz(f)).unwrap(),
            MemoryConfig::new(MegaHertz(m)).unwrap(),
        )
    }

    #[test]
    fn compute_probe_scales_linearly_with_compute() {
        let m = IntervalModel::default();
        let k = compute_probe(1.0);
        let slow = m.simulate(cfg(16, 500, 1375), &k, 0).time.value();
        let fast = m.simulate(cfg(32, 1000, 1375), &k, 0).time.value();
        assert!(slow / fast > 3.5, "speedup {}", slow / fast);
    }

    #[test]
    fn bandwidth_probe_saturates_the_bus() {
        let m = IntervalModel::default();
        let k = bandwidth_probe(128.0);
        let r = m.simulate(HwConfig::max_hd7970(), &k, 0);
        assert!(
            r.counters.ic_activity > 0.8,
            "bandwidth probe only reached {:.2} of peak",
            r.counters.ic_activity
        );
    }

    #[test]
    fn occupancy_probe_hits_exact_wave_counts() {
        let gpu = GpuDescriptor::hd7970();
        for waves in 1..=10 {
            let k = occupancy_probe(waves);
            let occ = Occupancy::compute(&gpu, &k, 32);
            assert_eq!(occ.waves_per_simd, waves, "probe {waves}");
        }
    }

    #[test]
    #[should_panic(expected = "occupancy must be")]
    fn occupancy_probe_validates_range() {
        let _ = occupancy_probe(11);
    }

    #[test]
    fn higher_occupancy_extracts_more_bandwidth() {
        let m = IntervalModel::default();
        let low = m
            .simulate(HwConfig::max_hd7970(), &occupancy_probe(1), 0)
            .counters
            .achieved_bw_gbps;
        let high = m
            .simulate(HwConfig::max_hd7970(), &occupancy_probe(10), 0)
            .counters
            .achieved_bw_gbps;
        assert!(
            high > low * 1.5,
            "occupancy 10 ({high} GB/s) should beat occupancy 1 ({low} GB/s)"
        );
    }

    #[test]
    fn divergence_probe_reports_its_utilization() {
        let m = IntervalModel::default();
        let r = m.simulate(HwConfig::max_hd7970(), &divergence_probe(0.75), 0);
        assert!((r.counters.valu_utilization_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn balance_ladder_crosses_from_memory_to_compute_bound() {
        let m = IntervalModel::default();
        let cfg = HwConfig::max_hd7970();
        let lean = m.simulate(cfg, &balance_probe(0.5), 0).counters;
        let heavy = m.simulate(cfg, &balance_probe(64.0), 0).counters;
        assert!(lean.ic_activity > 0.5, "low-intensity probe must be memory bound");
        assert!(heavy.valu_busy_pct > 80.0, "high-intensity probe must be compute bound");
        assert!(heavy.ic_activity < lean.ic_activity);
    }

    #[test]
    fn probes_have_unique_descriptive_names() {
        let names = [
            compute_probe(1.0).name,
            bandwidth_probe(128.0).name,
            occupancy_probe(3).name,
            divergence_probe(0.5).name,
            balance_probe(4.0).name,
        ];
        let mut sorted = names.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        assert!(names.iter().all(|n| n.starts_with("probe.")));
    }
}
