//! Randomized workload generation.
//!
//! Used by property tests (arbitrary-but-valid kernels must never crash the
//! timing models or the governors) and by robustness studies that check the
//! trained sensitivity predictors on kernels *outside* the training suite.

use harmonia_sim::{KernelProfile, PhaseModulation, PhaseScale};
use rand::Rng;

/// Generates a random, always-valid kernel profile.
///
/// The distribution spans the suite's envelope: compute-bound, memory-bound,
/// divergent, register-hungry, and cache-thrashing kernels all occur.
pub fn random_profile<R: Rng + ?Sized>(rng: &mut R, name: impl Into<String>) -> KernelProfile {
    let archetype = rng.gen_range(0..4u8);
    let mut b = KernelProfile::builder(name)
        .workitems(1 << rng.gen_range(14..23))
        .workgroup_size(*[64u32, 128, 256].get(rng.gen_range(0..3)).expect("index in range"))
        .vgprs(rng.gen_range(12..=128))
        .sgprs(rng.gen_range(12..=102))
        .branch_divergence(rng.gen_range(0.0..0.8))
        .mem_divergence(1.0 + rng.gen_range(0.0..3.0))
        .l1_hit_rate(rng.gen_range(0.0..0.9))
        .l2_hit_rate(rng.gen_range(0.0..0.9))
        .blocks_per_wave(rng.gen_range(2..24))
        .launch_overhead_us(rng.gen_range(2.0..20.0));
    b = match archetype {
        0 => b
            .valu_insts_per_item(rng.gen_range(500.0..3000.0))
            .vfetch_insts_per_item(rng.gen_range(0.5..2.0))
            .bytes_per_fetch(rng.gen_range(4.0..16.0)),
        1 => b
            .valu_insts_per_item(rng.gen_range(4.0..60.0))
            .vfetch_insts_per_item(rng.gen_range(4.0..10.0))
            .bytes_per_fetch(rng.gen_range(16.0..64.0)),
        2 => b
            .valu_insts_per_item(rng.gen_range(60.0..600.0))
            .vfetch_insts_per_item(rng.gen_range(2.0..8.0))
            .bytes_per_fetch(rng.gen_range(8.0..32.0))
            .l2_thrash_slope(rng.gen_range(0.0..0.6)),
        _ => b
            .valu_insts_per_item(rng.gen_range(8.0..200.0))
            .vfetch_insts_per_item(rng.gen_range(1.0..6.0))
            .bytes_per_fetch(rng.gen_range(4.0..32.0))
            .vwrite_insts_per_item(rng.gen_range(0.0..3.0))
            .bytes_per_write(rng.gen_range(4.0..32.0)),
    };
    if rng.gen_bool(0.3) {
        let len = rng.gen_range(2..8);
        let phases = (0..len)
            .map(|_| PhaseScale {
                compute: rng.gen_range(0.2..4.0),
                memory: rng.gen_range(0.2..4.0),
            })
            .collect();
        b = b.phase(PhaseModulation::Cycle(phases));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::{GpuDescriptor, IntervalModel, TimingModel};
    use harmonia_types::HwConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_profiles_are_valid_and_simulate() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = IntervalModel::default();
        let gpu = GpuDescriptor::hd7970();
        for i in 0..50 {
            let k = random_profile(&mut rng, format!("rand{i}"));
            assert!(k.vgprs_per_item <= gpu.vgprs_per_simd);
            assert!(k.mem_divergence >= 1.0);
            let r = model.simulate(HwConfig::max_hd7970(), &k, 0);
            assert!(r.time.value().is_finite() && r.time.value() > 0.0);
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = random_profile(&mut StdRng::seed_from_u64(42), "a");
        let b = random_profile(&mut StdRng::seed_from_u64(42), "a");
        assert_eq!(a, b);
    }
}
