//! The 14 applications of Section 6, with per-kernel characterizations.
//!
//! Parameter choices encode what the paper reports about each kernel:
//!
//! * `Sort.BottomScan` uses 66 VGPRs → 30% occupancy, has 6% branch
//!   divergence across millions of instructions, is compute-frequency
//!   sensitive and can run the memory bus at 475 MHz (Sections 3.5, 7.1).
//! * `SRAD.Prepare` has ~75% branch divergence but only 8 ALU instructions,
//!   so compute frequency barely matters (Figure 8).
//! * `CoMD.AdvanceVelocity` has 100% occupancy and is bandwidth sensitive;
//!   `CoMD.EAM_Force_1` tolerates a slow memory bus (Figure 7, Section 7.1).
//! * `DeviceMemory` demands ~4 ops/byte with a poor L2 hit rate, making it
//!   compute-frequency sensitive through the clock-domain crossing
//!   (Figure 9) and bandwidth-bound otherwise (Figure 3b).
//! * `BPT`, `CFD` and `XSBench` thrash the L2 so power-gating CUs *improves*
//!   performance (+11%/+3%/+3%, Section 7.1).
//! * `Graph500.BottomStepUp` sweeps ops/byte from 0.64 to 264 across BFS
//!   levels (Figures 14–16).

use crate::app::Application;
use harmonia_sim::{KernelProfile, PhaseModulation, PhaseScale};

fn scales(pairs: &[(f64, f64)]) -> PhaseModulation {
    PhaseModulation::Cycle(
        pairs
            .iter()
            .map(|&(compute, memory)| PhaseScale { compute, memory })
            .collect(),
    )
}

/// SHOC `MaxFlops`: the pure-compute stress benchmark (Figure 3a).
pub fn maxflops() -> Application {
    let k = KernelProfile::builder("MaxFlops.Main")
        .workitems(1 << 20)
        .vgprs(24)
        .sgprs(16)
        .valu_insts_per_item(2048.0)
        .vfetch_insts_per_item(1.0)
        .vwrite_insts_per_item(0.25)
        .bytes_per_fetch(4.0)
        .bytes_per_write(4.0)
        .branch_divergence(0.0)
        .l1_hit_rate(0.95)
        .l2_hit_rate(0.9)
        .blocks_per_wave(4)
        .build();
    Application::new("MaxFlops", vec![k], 10)
}

/// SHOC `DeviceMemory`: the streaming memory stress benchmark (Figure 3b);
/// demand ops/byte ≈ 4 with a poor L2 hit rate (Figure 9).
pub fn devicememory() -> Application {
    let k = KernelProfile::builder("DeviceMemory.Stream")
        .workitems(1 << 22)
        .vgprs(28)
        .sgprs(20)
        .valu_insts_per_item(960.0)
        .vfetch_insts_per_item(8.0)
        .vwrite_insts_per_item(2.0)
        .bytes_per_fetch(32.0)
        .bytes_per_write(32.0)
        .branch_divergence(0.02)
        .l1_hit_rate(0.02)
        .l2_hit_rate(0.03)
        .blocks_per_wave(8)
        .build();
    Application::new("DeviceMemory", vec![k], 10)
}

/// Rodinia `LUD`: matrix decomposition; compute bound at high memory
/// bandwidth with its best balance near normalized ops/byte ≈ 15 (Fig 3c).
pub fn lud() -> Application {
    let diagonal = KernelProfile::builder("LUD.Diagonal")
        .workitems(1 << 14)
        .vgprs(48)
        .sgprs(40)
        .valu_insts_per_item(220.0)
        .vfetch_insts_per_item(3.0)
        .bytes_per_fetch(8.0)
        .branch_divergence(0.30)
        .l1_hit_rate(0.5)
        .l2_hit_rate(0.6)
        .launch_overhead_us(10.0)
        .build();
    let perimeter = KernelProfile::builder("LUD.Perimeter")
        .workitems(1 << 17)
        .vgprs(44)
        .sgprs(36)
        .valu_insts_per_item(320.0)
        .vfetch_insts_per_item(4.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.18)
        .l1_hit_rate(0.4)
        .l2_hit_rate(0.5)
        .build();
    let internal = KernelProfile::builder("LUD.Internal")
        .workitems(1 << 20)
        .vgprs(40)
        .sgprs(32)
        .valu_insts_per_item(480.0)
        .vfetch_insts_per_item(6.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.08)
        .l1_hit_rate(0.35)
        .l2_hit_rate(0.45)
        .lds_bytes(8 * 1024)
        .build();
    Application::new("LUD", vec![diagonal, perimeter, internal], 16)
}

/// Rodinia `SRAD`: speckle-reducing anisotropic diffusion. `Prepare` is the
/// Figure 8 example: 75% divergence but only 8 ALU instructions.
pub fn srad() -> Application {
    let prepare = KernelProfile::builder("SRAD.Prepare")
        .workitems(1 << 16)
        .vgprs(16)
        .sgprs(16)
        .valu_insts_per_item(8.0)
        .vfetch_insts_per_item(1.0)
        .bytes_per_fetch(8.0)
        .branch_divergence(0.75)
        .l1_hit_rate(0.3)
        .l2_hit_rate(0.4)
        .launch_overhead_us(12.0)
        .blocks_per_wave(2)
        .build();
    let reduce = KernelProfile::builder("SRAD.Reduce")
        .workitems(1 << 18)
        .vgprs(24)
        .sgprs(20)
        .valu_insts_per_item(24.0)
        .vfetch_insts_per_item(2.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.2)
        .l1_hit_rate(0.3)
        .l2_hit_rate(0.4)
        .build();
    let main = KernelProfile::builder("SRAD.Main")
        .workitems(1 << 20)
        .vgprs(36)
        .sgprs(28)
        .valu_insts_per_item(180.0)
        .vfetch_insts_per_item(5.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.1)
        .l1_hit_rate(0.5)
        .l2_hit_rate(0.5)
        .build();
    Application::new("SRAD", vec![prepare, reduce, main], 16)
}

/// SHOC `Sort` (radix sort). `BottomScan` is the paper's running example:
/// 66 VGPRs → 3 waves/SIMD (30% occupancy), 6% divergence over millions of
/// instructions, high compute sensitivity, low bandwidth sensitivity.
pub fn sort() -> Application {
    let bottom_scan = KernelProfile::builder("Sort.BottomScan")
        .workitems(1 << 21)
        .vgprs(66)
        .sgprs(48)
        .valu_insts_per_item(500.0)
        .vfetch_insts_per_item(4.0)
        .vwrite_insts_per_item(1.0)
        .bytes_per_fetch(8.0)
        .bytes_per_write(8.0)
        .branch_divergence(0.06)
        .l1_hit_rate(0.2)
        .l2_hit_rate(0.3)
        .blocks_per_wave(16)
        .build();
    let top_scan = KernelProfile::builder("Sort.TopScan")
        .workitems(1 << 13)
        .vgprs(32)
        .sgprs(32)
        .valu_insts_per_item(120.0)
        .vfetch_insts_per_item(2.0)
        .bytes_per_fetch(8.0)
        .branch_divergence(0.1)
        .l1_hit_rate(0.4)
        .l2_hit_rate(0.6)
        .launch_overhead_us(10.0)
        .build();
    let reduce = KernelProfile::builder("Sort.Reduce")
        .workitems(1 << 20)
        .vgprs(28)
        .sgprs(24)
        .valu_insts_per_item(48.0)
        .vfetch_insts_per_item(2.0)
        .bytes_per_fetch(32.0)
        .branch_divergence(0.05)
        .l1_hit_rate(0.1)
        .l2_hit_rate(0.2)
        .build();
    Application::new("Sort", vec![bottom_scan, top_scan, reduce], 12)
}

/// Exascale proxy `CoMD` (molecular dynamics). `AdvanceVelocity` has 100%
/// occupancy and is bandwidth sensitive (Figure 7); `EAM_Force_1` is
/// compute-heavy and tolerates a slow memory bus (Section 7.1).
pub fn comd() -> Application {
    let advance_velocity = KernelProfile::builder("CoMD.AdvanceVelocity")
        .workitems(1 << 21)
        .vgprs(20)
        .sgprs(20)
        .valu_insts_per_item(160.0)
        .vfetch_insts_per_item(6.0)
        .vwrite_insts_per_item(2.0)
        .bytes_per_fetch(16.0)
        .bytes_per_write(16.0)
        .branch_divergence(0.05)
        .l1_hit_rate(0.25)
        .l2_hit_rate(0.35)
        .build();
    let eam_force = KernelProfile::builder("CoMD.EAM_Force_1")
        .workitems(1 << 20)
        .vgprs(52)
        .sgprs(40)
        .valu_insts_per_item(700.0)
        .vfetch_insts_per_item(5.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.12)
        .l1_hit_rate(0.45)
        .l2_hit_rate(0.5)
        .blocks_per_wave(12)
        .build();
    let advance_position = KernelProfile::builder("CoMD.AdvancePosition")
        .workitems(1 << 21)
        .vgprs(18)
        .sgprs(16)
        .valu_insts_per_item(40.0)
        .vfetch_insts_per_item(3.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.02)
        .l1_hit_rate(0.2)
        .l2_hit_rate(0.3)
        .build();
    Application::new("CoMD", vec![advance_velocity, eam_force, advance_position], 16)
}

/// Exascale proxy `XSBench` (Monte Carlo neutron transport lookup): memory
/// latency bound with heavy cache pressure; only 2 iterations, so
/// coarse-grain tuning must land in one step (Section 7.2).
pub fn xsbench() -> Application {
    let lookup = KernelProfile::builder("XSBench.Lookup")
        .workitems(1 << 21)
        .vgprs(36)
        .sgprs(36)
        .valu_insts_per_item(140.0)
        .vfetch_insts_per_item(6.0)
        .bytes_per_fetch(8.0)
        .mem_divergence(3.0)
        .branch_divergence(0.25)
        .l1_hit_rate(0.05)
        .l2_hit_rate(0.5)
        .l2_thrash_slope(0.35)
        .blocks_per_wave(12)
        .build();
    Application::new("XSBench", vec![lookup], 2)
}

/// Exascale proxy `miniFE` (implicit finite elements): sparse matvec plus a
/// dot-product reduction.
pub fn minife() -> Application {
    let matvec = KernelProfile::builder("miniFE.MatVec")
        .workitems(1 << 20)
        .vgprs(34)
        .sgprs(30)
        .valu_insts_per_item(60.0)
        .vfetch_insts_per_item(5.0)
        .bytes_per_fetch(8.0)
        .mem_divergence(2.2)
        .branch_divergence(0.15)
        .l1_hit_rate(0.15)
        .l2_hit_rate(0.3)
        .build();
    let dot = KernelProfile::builder("miniFE.Dot")
        .workitems(1 << 20)
        .vgprs(20)
        .sgprs(18)
        .valu_insts_per_item(24.0)
        .vfetch_insts_per_item(2.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.03)
        .l1_hit_rate(0.1)
        .l2_hit_rate(0.15)
        .build();
    Application::new("miniFE", vec![matvec, dot], 16)
}

/// `Graph500` breadth-first search. `BottomStepUp` carries the paper's
/// intra-kernel phase study: ops/byte swings from 0.64 to 264 across BFS
/// levels as the frontier grows and collapses (Figures 14–16).
pub fn graph500() -> Application {
    let bottom_step_up = KernelProfile::builder("Graph500.BottomStepUp")
        .workitems(1 << 20)
        .vgprs(36)
        .sgprs(34)
        .valu_insts_per_item(800.0) // divergent both-path execution inflates this
        .vfetch_insts_per_item(4.0)
        .bytes_per_fetch(8.0)
        .mem_divergence(2.0)
        .branch_divergence(0.45)
        .l1_hit_rate(0.1)
        .l2_hit_rate(0.35)
        .l2_thrash_slope(0.15)
        .blocks_per_wave(12)
        .phase(scales(&[
            (1.2, 1.0),
            (2.2, 1.8),
            (3.2, 2.2),
            (2.6, 1.2),
            (1.8, 0.6),
            (1.0, 0.3),
            (0.7, 0.15),
            (0.5, 0.1),
        ]))
        .build();
    let top_down = KernelProfile::builder("Graph500.TopDown")
        .workitems(1 << 20)
        .vgprs(30)
        .sgprs(28)
        .valu_insts_per_item(80.0)
        .vfetch_insts_per_item(6.0)
        .bytes_per_fetch(8.0)
        .mem_divergence(2.0)
        .branch_divergence(0.3)
        .l1_hit_rate(0.1)
        .l2_hit_rate(0.3)
        .phase(scales(&[
            (1.5, 1.8),
            (3.0, 3.5),
            (3.5, 4.0),
            (2.0, 2.2),
            (1.0, 1.0),
            (0.6, 0.5),
            (0.3, 0.3),
            (0.2, 0.2),
        ]))
        .build();
    let bitmap = KernelProfile::builder("Graph500.BitmapConstruct")
        .workitems(1 << 19)
        .vgprs(16)
        .sgprs(16)
        .valu_insts_per_item(30.0)
        .vfetch_insts_per_item(2.0)
        .bytes_per_fetch(32.0)
        .branch_divergence(0.05)
        .l1_hit_rate(0.1)
        .l2_hit_rate(0.2)
        .build();
    Application::new("Graph500", vec![bottom_step_up, top_down, bitmap], 8)
}

/// `BPT` (B+Tree search): heavy memory divergence and L2 thrashing —
/// power-gating CUs reduces cache interference and *improves* performance
/// by ~11% (Section 7.1); Harmonia's best ED² result (36%).
pub fn bpt() -> Application {
    let find_k = KernelProfile::builder("BPT.FindK")
        .workitems(1 << 20)
        .vgprs(48)
        .sgprs(40)
        .valu_insts_per_item(100.0)
        .vfetch_insts_per_item(8.0)
        .bytes_per_fetch(8.0)
        .mem_divergence(3.2)
        .branch_divergence(0.2)
        .l1_hit_rate(0.05)
        .l2_hit_rate(0.8)
        .l2_thrash_slope(0.6)
        .blocks_per_wave(10)
        .build();
    let find_range = KernelProfile::builder("BPT.FindRangeK")
        .workitems(1 << 19)
        .vgprs(44)
        .sgprs(36)
        .valu_insts_per_item(80.0)
        .vfetch_insts_per_item(6.0)
        .bytes_per_fetch(8.0)
        .mem_divergence(2.5)
        .branch_divergence(0.18)
        .l1_hit_rate(0.05)
        .l2_hit_rate(0.75)
        .l2_thrash_slope(0.5)
        .build();
    Application::new("BPT", vec![find_k, find_range], 12)
}

/// Rodinia `CFD` (unstructured-grid Euler solver): cache-pressure-limited
/// flux computation (+3% with Harmonia) plus a streaming time step.
pub fn cfd() -> Application {
    let flux = KernelProfile::builder("CFD.ComputeFlux")
        .workitems(1 << 20)
        .vgprs(46)
        .sgprs(38)
        .valu_insts_per_item(260.0)
        .vfetch_insts_per_item(7.0)
        .bytes_per_fetch(12.0)
        .mem_divergence(1.8)
        .branch_divergence(0.15)
        .l1_hit_rate(0.2)
        .l2_hit_rate(0.6)
        .l2_thrash_slope(0.3)
        .build();
    let time_step = KernelProfile::builder("CFD.TimeStep")
        .workitems(1 << 20)
        .vgprs(24)
        .sgprs(20)
        .valu_insts_per_item(60.0)
        .vfetch_insts_per_item(3.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.03)
        .l1_hit_rate(0.2)
        .l2_hit_rate(0.3)
        .build();
    Application::new("CFD", vec![flux, time_step], 16)
}

/// Rodinia `Streamcluster` (online clustering): sensitive to both compute
/// and memory; its predicted sensitivity sits near a bin edge, the paper's
/// worst case for coarse-grain-only tuning (−27%; Figure 13).
pub fn streamcluster() -> Application {
    let pgain = KernelProfile::builder("Streamcluster.PGain")
        .workitems(1 << 20)
        .vgprs(30)
        .sgprs(26)
        .valu_insts_per_item(240.0)
        .vfetch_insts_per_item(6.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.1)
        .l1_hit_rate(0.3)
        .l2_hit_rate(0.35)
        .build();
    Application::new("Streamcluster", vec![pgain], 16)
}

/// SHOC `Stencil` (2D 9-point stencil): good cache behaviour lets both the
/// memory bus and part of the compute throttle down — the paper's largest
/// power saving (19%, Figure 12).
pub fn stencil() -> Application {
    let stencil2d = KernelProfile::builder("Stencil.Stencil2D")
        .workitems(1 << 21)
        .vgprs(26)
        .sgprs(22)
        .valu_insts_per_item(100.0)
        .vfetch_insts_per_item(5.0)
        .bytes_per_fetch(16.0)
        .branch_divergence(0.05)
        .l1_hit_rate(0.3)
        .l2_hit_rate(0.75)
        .lds_bytes(4 * 1024)
        .blocks_per_wave(8)
        .build();
    Application::new("Stencil", vec![stencil2d], 16)
}

/// SHOC `SPMV` (CSR sparse matrix-vector): irregular accesses; a
/// coarse-grain prediction outlier that fine-grain tuning must correct
/// (Figure 18 discussion).
pub fn spmv() -> Application {
    let csr = KernelProfile::builder("SPMV.CsrScalar")
        .workitems(1 << 20)
        .vgprs(44)
        .sgprs(34)
        .valu_insts_per_item(45.0)
        .vfetch_insts_per_item(4.0)
        .bytes_per_fetch(8.0)
        .mem_divergence(2.8)
        .branch_divergence(0.3)
        .l1_hit_rate(0.1)
        .l2_hit_rate(0.25)
        .build();
    Application::new("SPMV", vec![csr], 12)
}

/// All 14 applications in the paper's listing order.
pub fn all() -> Vec<Application> {
    vec![
        comd(),
        xsbench(),
        minife(),
        graph500(),
        bpt(),
        cfd(),
        lud(),
        srad(),
        streamcluster(),
        stencil(),
        sort(),
        spmv(),
        maxflops(),
        devicememory(),
    ]
}

/// The two stress benchmarks excluded from the paper's "Geomean 2".
pub const STRESS_APPS: [&str; 2] = ["MaxFlops", "DeviceMemory"];

/// Looks up one application of the suite by name.
pub fn by_name(name: &str) -> Option<Application> {
    all().into_iter().find(|a| a.name == name)
}

/// Every kernel of the suite, paired with its application name — the
/// training population of Section 4 ("a total of 25 application kernels").
pub fn training_kernels() -> Vec<(String, harmonia_sim::KernelProfile)> {
    all()
        .into_iter()
        .flat_map(|app| {
            let name = app.name.clone();
            app.kernels
                .into_iter()
                .map(move |k| (name.clone(), k))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::{GpuDescriptor, Occupancy, OccupancyLimiter};

    #[test]
    fn suite_has_14_apps_and_25plus_kernels() {
        let apps = all();
        assert_eq!(apps.len(), 14);
        let kernels = training_kernels();
        assert!(kernels.len() >= 25, "only {} kernels", kernels.len());
    }

    #[test]
    fn kernel_names_are_unique_and_prefixed() {
        let kernels = training_kernels();
        let mut names: Vec<&str> = kernels.iter().map(|(_, k)| k.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate kernel names");
        for (app, k) in &kernels {
            assert!(
                k.name.starts_with(app.as_str()),
                "{} not prefixed with {}",
                k.name,
                app
            );
        }
    }

    #[test]
    fn by_name_finds_every_app() {
        for app in all() {
            assert!(by_name(&app.name).is_some());
        }
        assert!(by_name("NotAnApp").is_none());
    }

    #[test]
    fn bottom_scan_is_vgpr_limited_at_30pct() {
        let app = sort();
        let k = app.kernel("Sort.BottomScan").unwrap();
        let occ = Occupancy::compute(&GpuDescriptor::hd7970(), k, 32);
        assert_eq!(occ.waves_per_simd, 3);
        assert_eq!(occ.limiter, OccupancyLimiter::Vgpr);
    }

    #[test]
    fn advance_velocity_has_full_occupancy() {
        let app = comd();
        let k = app.kernel("CoMD.AdvanceVelocity").unwrap();
        let occ = Occupancy::compute(&GpuDescriptor::hd7970(), k, 32);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn srad_prepare_matches_figure8_shape() {
        let app = srad();
        let k = app.kernel("SRAD.Prepare").unwrap();
        assert!((k.branch_divergence - 0.75).abs() < 1e-12);
        assert!((k.valu_insts_per_item - 8.0).abs() < 1e-12);
    }

    #[test]
    fn thrash_prone_apps_have_thrash_slopes() {
        for (app_name, kernel_name) in [
            ("BPT", "BPT.FindK"),
            ("CFD", "CFD.ComputeFlux"),
            ("XSBench", "XSBench.Lookup"),
        ] {
            let app = by_name(app_name).unwrap();
            let k = app.kernel(kernel_name).unwrap();
            assert!(k.l2_thrash_slope > 0.2, "{kernel_name} lacks thrash");
        }
    }

    #[test]
    fn xsbench_runs_two_iterations() {
        assert_eq!(xsbench().iterations, 2);
    }

    #[test]
    fn graph500_phases_swing_ops_per_byte() {
        let app = graph500();
        let k = app.kernel("Graph500.BottomStepUp").unwrap();
        let ratios: Vec<f64> = (0..8)
            .map(|i| {
                let s = k.phase.scale_for(i);
                s.compute / s.memory
            })
            .collect();
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 4.0, "phase ops/byte swing too small: {ratios:?}");
    }

    #[test]
    fn stress_apps_listed() {
        assert!(STRESS_APPS.contains(&"MaxFlops"));
        assert!(STRESS_APPS.contains(&"DeviceMemory"));
        for name in STRESS_APPS {
            assert!(by_name(name).is_some());
        }
    }

    #[test]
    fn every_kernel_is_valid_for_the_device() {
        let gpu = GpuDescriptor::hd7970();
        for (_, k) in training_kernels() {
            assert!(k.vgprs_per_item <= gpu.vgprs_per_simd);
            assert!(k.sgprs_per_wave <= gpu.sgprs_per_simd);
            assert!(u64::from(k.lds_per_group_bytes) <= u64::from(gpu.lds_per_cu_bytes));
            assert!(k.workitems > 0);
            assert!((0.0..=1.0).contains(&k.branch_divergence));
            assert!(k.mem_divergence >= 1.0);
        }
    }
}
