//! Water-filling partition of one global power cap across devices.
//!
//! Every tick each device reports a [`DeviceDemand`]: the projected card
//! power of its grid-floor configuration (`floor`), of its unconstrained
//! ED²-optimal configuration (`demand`), and its predicted ED² marginal
//! benefit per watt of headroom (`weight`). The [`ClusterGovernor`] grants
//! each device
//!
//! ```text
//! c_i = floor_i + min(extra_i, λ·w_i),   extra_i = demand_i − floor_i
//! ```
//!
//! with one water level `λ ≥ 0` chosen so `Σ c_i` meets the distributable
//! budget: devices whose full demand costs less than their fair share
//! saturate at `demand_i`, and the leftover headroom flows to the devices
//! with the steepest predicted ED² improvement per watt — classic
//! water-filling on marginal benefit. When even `Σ floor_i` exceeds the
//! budget the tick is *infeasible*: every device is held at its floor and
//! the scheduler counts the tick, since no partition can honor the cap.
//!
//! # Determinism and symmetry
//!
//! The partition runs in the scheduler's serial phase. Breakpoints are
//! sorted with a device-id tie-break and every float reduction runs in
//! that fixed order, so the result is byte-stable. Devices with
//! bit-identical demands receive bit-identical grants (`min(extra, λ·w)`
//! is a pure per-device function of λ), which keeps symmetric fleets
//! symmetric; the rounding of λ can overshoot the distributable budget by
//! a few ulps, which the governor's transient margin absorbs many orders
//! of magnitude over.

use harmonia_types::Watts;

/// One device's per-tick power telemetry, as projected by the device
/// session from its most recent observed activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceDemand {
    /// Projected card power at the grid-floor configuration — the least
    /// the device can draw while still running.
    pub floor: f64,
    /// Projected card power at the unconstrained ED²-optimal
    /// configuration — what the device would draw with no cluster cap.
    pub demand: f64,
    /// Predicted ED² marginal benefit per watt of headroom above the
    /// floor (≥ 0); the water-filling weight.
    pub weight: f64,
}

/// The result of one cap partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-device cap shares, in device-id order.
    pub caps: Vec<Watts>,
    /// Whether even the floors exceeded the budget (shares are then the
    /// floors themselves and the cap cannot be honored this tick).
    pub infeasible: bool,
    /// The water level that cleared the market (`f64::INFINITY` when every
    /// demand fit under the budget).
    pub lambda: f64,
}

/// Partitions a global power cap across devices by water-filling on
/// predicted ED² marginal benefit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterGovernor {
    cap: Watts,
    margin: f64,
}

/// Weight floor: a device whose predicted benefit is zero (or whose gap is
/// degenerate) still participates with a vanishing weight, so uniform
/// fleets split headroom evenly instead of starving everyone.
const MIN_WEIGHT: f64 = 1e-12;

impl ClusterGovernor {
    /// A governor distributing `cap` with the default 2% transient margin.
    ///
    /// The margin guards the one-tick window after a re-balance: each
    /// device's clamp projects power from activity observed at the
    /// *previous* grant, so a config change can overshoot its share by the
    /// activity drift until the next observation lands. Holding back 2% of
    /// the cap absorbs that drift; steady-state (phase-stable) fleets are
    /// exact and never need it.
    pub fn new(cap: Watts) -> Self {
        Self { cap, margin: 0.02 }
    }

    /// Overrides the transient margin (fraction of the cap withheld from
    /// distribution, clamped to `[0, 0.5]`).
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin.clamp(0.0, 0.5);
        self
    }

    /// The global cap being distributed.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Partitions the cap over `demands` (device-id order). Runs in the
    /// scheduler's serial phase; every reduction is fixed-order.
    pub fn partition(&self, demands: &[DeviceDemand]) -> Allocation {
        let budget = self.cap.value() * (1.0 - self.margin);
        let floors: f64 = demands.iter().map(|d| d.floor).sum();
        if floors >= budget {
            return Allocation {
                caps: demands.iter().map(|d| Watts(d.floor)).collect(),
                infeasible: true,
                lambda: 0.0,
            };
        }
        let extras: Vec<f64> = demands.iter().map(|d| (d.demand - d.floor).max(0.0)).collect();
        let weights: Vec<f64> = demands.iter().map(|d| d.weight.max(MIN_WEIGHT)).collect();
        let remaining = budget - floors;
        let total_extra: f64 = extras.iter().sum();
        let lambda = if total_extra <= remaining {
            f64::INFINITY
        } else {
            self.water_level(&extras, &weights, remaining)
        };
        // `min(extra, λ·w)` is a pure per-device function of λ, so
        // bit-identical demands get bit-identical grants; λ's rounding can
        // overshoot the budget only by ulps, which the margin dwarfs.
        let caps = demands
            .iter()
            .zip(extras.iter().zip(&weights))
            .map(|(d, (&extra, &w))| Watts(d.floor + extra.min(lambda * w).max(0.0)))
            .collect();
        Allocation {
            caps,
            infeasible: false,
            lambda,
        }
    }

    /// Finds λ with `Σ min(extra_i, λ·w_i) = remaining` by walking the
    /// saturation breakpoints `b_i = extra_i / w_i` in ascending order
    /// (device-id tie-break keeps the walk deterministic).
    fn water_level(&self, extras: &[f64], weights: &[f64], remaining: f64) -> f64 {
        let mut order: Vec<usize> = (0..extras.len()).collect();
        order.sort_by(|&a, &b| {
            let ba = extras[a] / weights[a];
            let bb = extras[b] / weights[b];
            ba.partial_cmp(&bb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        // Devices below the water level contribute λ·w_i; saturated ones
        // contribute their full extra. Walk breakpoints until the level
        // fits between two of them.
        let mut saturated = 0.0_f64;
        let mut live_weight: f64 = weights.iter().sum();
        for &i in &order {
            let b = extras[i] / weights[i];
            if saturated + b * live_weight >= remaining {
                return (remaining - saturated) / live_weight;
            }
            saturated += extras[i];
            live_weight -= weights[i];
        }
        // Σ extras ≤ remaining is handled by the caller; reaching here
        // means rounding ate the last breakpoint — everyone saturates.
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_total(a: &Allocation) -> f64 {
        a.caps.iter().map(|c| c.value()).sum()
    }

    #[test]
    fn ample_budget_grants_every_demand() {
        let g = ClusterGovernor::new(Watts(1000.0)).with_margin(0.0);
        let demands = vec![
            DeviceDemand { floor: 100.0, demand: 250.0, weight: 1.0 },
            DeviceDemand { floor: 100.0, demand: 200.0, weight: 2.0 },
        ];
        let a = g.partition(&demands);
        assert!(!a.infeasible);
        assert_eq!(a.lambda, f64::INFINITY);
        assert_eq!(a.caps, vec![Watts(250.0), Watts(200.0)]);
    }

    #[test]
    fn tight_budget_never_exceeds_the_cap_and_favors_high_weight() {
        let g = ClusterGovernor::new(Watts(300.0)).with_margin(0.0);
        let demands = vec![
            DeviceDemand { floor: 100.0, demand: 300.0, weight: 1.0 },
            DeviceDemand { floor: 100.0, demand: 300.0, weight: 3.0 },
        ];
        let a = g.partition(&demands);
        assert!(!a.infeasible);
        assert!(alloc_total(&a) <= 300.0 + 1e-9);
        let extra0 = a.caps[0].value() - 100.0;
        let extra1 = a.caps[1].value() - 100.0;
        assert!(extra1 > extra0, "headroom must flow to the steeper ED² gradient");
        // Water-filling: un-saturated extras are proportional to weights.
        assert!((extra1 / extra0 - 3.0).abs() < 1e-9, "{extra0} vs {extra1}");
    }

    #[test]
    fn saturated_devices_free_headroom_for_the_rest() {
        let g = ClusterGovernor::new(Watts(460.0)).with_margin(0.0);
        let demands = vec![
            DeviceDemand { floor: 100.0, demand: 120.0, weight: 5.0 }, // saturates at 20 W extra
            DeviceDemand { floor: 100.0, demand: 400.0, weight: 1.0 },
        ];
        let a = g.partition(&demands);
        assert_eq!(a.caps[0], Watts(120.0), "cheap demand is fully granted");
        assert!((a.caps[1].value() - 340.0).abs() < 1e-9, "rest flows on: {:?}", a);
    }

    #[test]
    fn infeasible_floors_hold_every_device_at_its_floor() {
        let g = ClusterGovernor::new(Watts(150.0)).with_margin(0.0);
        let demands = vec![
            DeviceDemand { floor: 100.0, demand: 200.0, weight: 1.0 },
            DeviceDemand { floor: 100.0, demand: 200.0, weight: 1.0 },
        ];
        let a = g.partition(&demands);
        assert!(a.infeasible);
        assert_eq!(a.caps, vec![Watts(100.0), Watts(100.0)]);
    }

    #[test]
    fn zero_weights_still_split_headroom_evenly() {
        let g = ClusterGovernor::new(Watts(300.0)).with_margin(0.0);
        let demands = vec![
            DeviceDemand { floor: 100.0, demand: 200.0, weight: 0.0 },
            DeviceDemand { floor: 100.0, demand: 200.0, weight: 0.0 },
        ];
        let a = g.partition(&demands);
        assert!(!a.infeasible);
        assert!((a.caps[0].value() - 150.0).abs() < 1e-9);
        assert!((a.caps[1].value() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn grants_overshoot_the_budget_by_at_most_rounding_ulps() {
        // Awkward magnitudes that stress rounding in the λ solve: any
        // overshoot must stay at ulp scale (the margin absorbs it).
        let g = ClusterGovernor::new(Watts(1234.567)).with_margin(0.0);
        let demands: Vec<DeviceDemand> = (0..97)
            .map(|i| DeviceDemand {
                floor: 7.3 + (i as f64) * 0.011,
                demand: 19.9 + (i as f64) * 0.017,
                weight: 0.1 + ((i * 37) % 11) as f64,
            })
            .collect();
        let a = g.partition(&demands);
        assert!(!a.infeasible);
        let total: f64 = a.caps.iter().map(|c| c.value()).sum();
        assert!(
            total <= 1234.567 * (1.0 + 1e-12),
            "grants overshot the budget beyond rounding: {total}"
        );
    }
}
