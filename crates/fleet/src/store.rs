//! The cross-session sweep-plan and simulation-cache store.
//!
//! One [`PlanStore`] is shared by every device session in a fleet. It owns
//! a single [`SimCache`] plus one [`SweepPlan`] per *(device class,
//! kernel fingerprint)* pair ([`TimingModel::device_key`],
//! [`KernelProfile::cache_key`]), so the first device of a class to meet a
//! kernel pays the batched cold sweep and every later device of that class
//! — on any worker thread — replays the memoized decision. A store can
//! carry several device classes (e.g. an hd7970 rack next to a v100 rack):
//! each class brings its own timing model, power model, and configuration
//! grid, while the simulation cache is shared (its key embeds the device
//! fingerprint, so classes never alias).
//!
//! # Determinism under concurrency
//!
//! Fleet reports must be byte-identical for any worker interleaving, and
//! that includes the cache accounting they embed. All cache traffic for
//! one (class, kernel) goes through that pair's plan mutex, so the
//! hit/miss *sequence* per pair is deterministic; traffic for different
//! pairs is key-disjoint (the [`CacheKey`](SimCache) embeds both the
//! kernel fingerprint and the device key), so concurrent pairs can only
//! interleave counter increments, never change their totals.

use harmonia::governor::{Ed2Objective, Governor, PowerTable};
use harmonia_power::PowerModel;
use harmonia_sim::{
    CacheStats, CachedModel, CounterSample, Decision, KernelProfile, PlanStats, SimCache,
    SimResult, SweepPlan, TimingModel,
};
use harmonia_types::{ConfigSpace, HwConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// One device class's modeling resources: timing model, power model, and
/// the materialized sweep grid of that device's configuration space.
struct ClassResources<'a> {
    model: &'a dyn TimingModel,
    power: &'a PowerModel,
    /// The class's sweep grid, materialized once for every plan.
    configs: Vec<HwConfig>,
    /// The class device's grid specification.
    grid: harmonia_types::GridSpec,
    /// The class grid's floor configuration (least-power grid point).
    floor: HwConfig,
    /// The class grid's ceiling configuration (boost grid point).
    boost: HwConfig,
    /// Affine `card_pwr` coefficients per grid lane (frontier bound).
    affine: PowerTable,
}

impl<'a> ClassResources<'a> {
    fn new(model: &'a dyn TimingModel, power: &'a PowerModel) -> Self {
        let grid = model.gpu().grid;
        let configs: Vec<HwConfig> = ConfigSpace::for_grid(&grid).iter().collect();
        let affine = PowerTable::probe(power, &configs);
        Self {
            model,
            power,
            configs,
            grid,
            floor: HwConfig::min_on(&grid),
            boost: HwConfig::max_on(&grid),
            affine,
        }
    }
}

/// Shared sweep plans and simulation cache for a whole fleet.
pub struct PlanStore<'a> {
    /// Device classes, in registration order; class 0 is the default every
    /// single-class entry point targets.
    classes: Vec<ClassResources<'a>>,
    cache: SimCache,
    /// One plan per (device key, kernel fingerprint). The outer lock only
    /// guards the map; each plan's own mutex serializes all sweep and
    /// cache work for that pair.
    plans: RwLock<PlanMap>,
}

/// Keyed (device fingerprint, kernel fingerprint) → independently locked plan.
type PlanMap = HashMap<(u64, u64), Arc<Mutex<SweepPlan>>>;

impl<'a> PlanStore<'a> {
    /// Creates an empty single-class store over the given models and the
    /// model device's full configuration grid.
    pub fn new(model: &'a dyn TimingModel, power: &'a PowerModel) -> Self {
        Self {
            classes: vec![ClassResources::new(model, power)],
            cache: SimCache::new(),
            plans: RwLock::new(HashMap::new()),
        }
    }

    /// Registers another device class (its own models and grid) and
    /// returns its class id. The simulation cache stays shared — its key
    /// embeds the device fingerprint, so classes never alias entries.
    pub fn add_class(&mut self, model: &'a dyn TimingModel, power: &'a PowerModel) -> usize {
        self.classes.push(ClassResources::new(model, power));
        self.classes.len() - 1
    }

    /// Number of registered device classes.
    pub fn classes(&self) -> usize {
        self.classes.len()
    }

    fn class(&self, class: usize) -> &ClassResources<'a> {
        &self.classes[class]
    }

    /// The power model class-0 sessions project against.
    pub fn power(&self) -> &'a PowerModel {
        self.power_of(0)
    }

    /// The power model sessions of `class` project against.
    pub fn power_of(&self, class: usize) -> &'a PowerModel {
        self.class(class).power
    }

    /// Class 0's sweep grid, in decision order.
    pub fn configs(&self) -> &[HwConfig] {
        self.configs_of(0)
    }

    /// The sweep grid of `class`, in decision order.
    pub fn configs_of(&self, class: usize) -> &[HwConfig] {
        &self.class(class).configs
    }

    /// The grid-floor configuration of `class` (least-power grid point).
    pub fn floor_of(&self, class: usize) -> HwConfig {
        self.class(class).floor
    }

    /// The grid-ceiling (boost) configuration of `class`.
    pub fn boost_of(&self, class: usize) -> HwConfig {
        self.class(class).boost
    }

    /// The grid specification of `class`'s device.
    pub fn grid_of(&self, class: usize) -> &harmonia_types::GridSpec {
        &self.class(class).grid
    }

    /// The (class, kernel) plan, created on first use. Read-locks the map
    /// on the hot path; only a genuinely new pair takes the write lock.
    fn plan_for(&self, class: usize, kernel: &KernelProfile) -> Arc<Mutex<SweepPlan>> {
        let res = self.class(class);
        let key = (res.model.device_key(), kernel.cache_key());
        if let Some(plan) = self.plans.read().expect("plan map poisoned").get(&key) {
            return Arc::clone(plan);
        }
        let mut map = self.plans.write().expect("plan map poisoned");
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(Mutex::new(SweepPlan::new(res.configs.clone())))),
        )
    }

    /// The ED²-optimal decision for one invocation on class 0.
    pub fn decide(&self, kernel: &KernelProfile, iteration: u64) -> Decision {
        self.decide_for(0, kernel, iteration)
    }

    /// The ED²-optimal decision for one invocation of `class`, served by
    /// the (class, kernel) shared plan: one batched cold sweep per pair
    /// fleet-wide, memo replay for every repeat, frontier-only re-sweeps
    /// for new phase scales.
    pub fn decide_for(&self, class: usize, kernel: &KernelProfile, iteration: u64) -> Decision {
        let res = self.class(class);
        let plan = self.plan_for(class, kernel);
        let mut plan = plan.lock().expect("plan poisoned");
        let cached = CachedModel::new(res.model, &self.cache);
        let objective = Ed2Objective::new(res.power, &res.affine);
        plan.decide(&cached, kernel, iteration, &objective)
    }

    /// Simulates one class-0 invocation through the shared cache.
    pub fn simulate(&self, kernel: &KernelProfile, cfg: HwConfig, iteration: u64) -> SimResult {
        self.simulate_for(0, kernel, cfg, iteration)
    }

    /// Simulates one invocation of `class` through the shared cache,
    /// serialized by the (class, kernel) plan lock so the accounting stays
    /// deterministic.
    pub fn simulate_for(
        &self,
        class: usize,
        kernel: &KernelProfile,
        cfg: HwConfig,
        iteration: u64,
    ) -> SimResult {
        let res = self.class(class);
        let plan = self.plan_for(class, kernel);
        let _guard = plan.lock().expect("plan poisoned");
        self.cache.simulate(res.model, cfg, kernel, iteration)
    }

    /// Number of distinct (class, kernel) pairs planned so far.
    pub fn unique_kernels(&self) -> usize {
        self.plans.read().expect("plan map poisoned").len()
    }

    /// Shared-cache accounting snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Sweep accounting summed over every kernel's plan, in fingerprint
    /// order-independent (commutative integer) totals.
    pub fn plan_stats(&self) -> PlanStats {
        let map = self.plans.read().expect("plan map poisoned");
        let mut total = PlanStats::default();
        for plan in map.values() {
            let s = plan.lock().expect("plan poisoned").stats();
            total.cold_sweeps += s.cold_sweeps;
            total.incremental_sweeps += s.incremental_sweeps;
            total.memo_hits += s.memo_hits;
            total.exact_lanes += s.exact_lanes;
        }
        total
    }
}

impl std::fmt::Debug for PlanStore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanStore")
            .field("kernels", &self.unique_kernels())
            .field("cache_entries", &self.cache.len())
            .finish()
    }
}

/// A per-session governor view over a shared [`PlanStore`]: every decision
/// is the store's ED² argmin for the session's device class, so N sessions
/// of one class running the same kernel cost one sweep total. Stateless —
/// all learning lives in the shared plans — which is what makes fleet
/// devices interchangeable and their reports independent of scheduling
/// order.
pub struct SharedOracleGovernor<'s, 'a> {
    store: &'s PlanStore<'a>,
    class: usize,
}

impl<'s, 'a> SharedOracleGovernor<'s, 'a> {
    /// A class-0 governor view over `store`.
    pub fn new(store: &'s PlanStore<'a>) -> Self {
        Self::for_class(store, 0)
    }

    /// A governor view deciding on `class`'s grid and models.
    pub fn for_class(store: &'s PlanStore<'a>, class: usize) -> Self {
        Self { store, class }
    }

    /// The shared store behind this view.
    pub fn store(&self) -> &'s PlanStore<'a> {
        self.store
    }

    /// The device class this view decides for.
    pub fn class(&self) -> usize {
        self.class
    }
}

impl Governor for SharedOracleGovernor<'_, '_> {
    fn name(&self) -> &str {
        "fleet:oracle"
    }

    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig {
        self.store.decide_for(self.class, kernel, iteration).config
    }

    fn observe(
        &mut self,
        _kernel: &KernelProfile,
        _iteration: u64,
        _cfg: HwConfig,
        _counters: &CounterSample,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::{DecisionKind, IntervalModel};
    use harmonia_workloads::suite;

    #[test]
    fn one_cold_sweep_serves_every_session() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let store = PlanStore::new(&model, &power);
        let k = &suite::stencil().kernels[0];
        let first = store.decide(k, 0);
        assert_eq!(first.kind, DecisionKind::Cold);
        for _ in 0..8 {
            let d = store.decide(k, 0);
            assert_eq!(d.kind, DecisionKind::Memo);
            assert_eq!(d.config, first.config);
            assert_eq!(d.result, first.result);
        }
        let stats = store.plan_stats();
        assert_eq!(stats.cold_sweeps, 1);
        assert_eq!(stats.memo_hits, 8);
        assert_eq!(store.unique_kernels(), 1);
        assert_eq!(store.cache_stats().misses, store.configs().len());
    }

    #[test]
    fn shared_decisions_match_a_private_oracle() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let store = PlanStore::new(&model, &power);
        let mut shared = SharedOracleGovernor::new(&store);
        let mut solo = harmonia::governor::OracleGovernor::new(&model, &power);
        for app in [suite::maxflops(), suite::devicememory(), suite::stencil()] {
            for k in &app.kernels {
                for i in 0..3 {
                    assert_eq!(shared.decide(k, i), solo.decide(k, i), "{} it {i}", k.name);
                }
            }
        }
    }

    #[test]
    fn device_classes_plan_and_decide_independently() {
        use harmonia_types::DeviceSpec;
        let hd = IntervalModel::default();
        let hd_power = PowerModel::hd7970();
        let v100 = DeviceSpec::v100();
        let v100_model = IntervalModel::new(v100.gpu.clone());
        let v100_power = PowerModel::for_device(&v100);
        let mut store = PlanStore::new(&hd, &hd_power);
        let class = store.add_class(&v100_model, &v100_power);
        assert_eq!(store.classes(), 2);
        assert_ne!(store.configs_of(0).len(), store.configs_of(class).len());
        let k = &suite::stencil().kernels[0];
        let d_hd = store.decide_for(0, k, 0);
        let d_v100 = store.decide_for(class, k, 0);
        // Same kernel, two plans: each class pays its own cold sweep and
        // its decision sits on its own grid.
        assert_eq!(store.unique_kernels(), 2);
        let v100_space = ConfigSpace::for_grid(&v100.gpu.grid);
        assert!(v100_space.contains(d_v100.config));
        assert!(ConfigSpace::hd7970().contains(d_hd.config));
        // The shared cache holds both grids' points, with zero aliasing:
        // total misses are exactly the two cold sweeps.
        assert_eq!(
            store.cache_stats().misses,
            store.configs_of(0).len() + store.configs_of(class).len()
        );
        // The class-0 decision is byte-identical to a single-class store's.
        let solo = PlanStore::new(&hd, &hd_power);
        assert_eq!(solo.decide(k, 0).config, d_hd.config);
        assert_eq!(solo.decide(k, 0).result, d_hd.result);
    }

    #[test]
    fn grid_lookups_after_the_cold_sweep_are_hits() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let store = PlanStore::new(&model, &power);
        let k = &suite::stencil().kernels[0];
        let d = store.decide(k, 0);
        let misses = store.cache_stats().misses;
        // Any grid configuration — the argmin, the grid floor — is already
        // cached by the cold sweep, so accounting sims cost no model work.
        assert_eq!(store.simulate(k, d.config, 0), d.result);
        let _ = store.simulate(k, HwConfig::min_hd7970(), 0);
        assert_eq!(store.cache_stats().misses, misses);
    }
}
