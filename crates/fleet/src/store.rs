//! The cross-session sweep-plan and simulation-cache store.
//!
//! One [`PlanStore`] is shared by every device session in a fleet. It owns
//! a single [`SimCache`] plus one [`SweepPlan`] per kernel *fingerprint*
//! ([`KernelProfile::cache_key`]), so the first device to meet a kernel
//! pays the batched cold sweep and every later device — on any worker
//! thread — replays the memoized decision.
//!
//! # Determinism under concurrency
//!
//! Fleet reports must be byte-identical for any worker interleaving, and
//! that includes the cache accounting they embed. All cache traffic for
//! one kernel goes through that kernel's plan mutex, so the hit/miss
//! *sequence* per kernel is deterministic; traffic for different kernels
//! is key-disjoint (the [`CacheKey`](SimCache) embeds the kernel
//! fingerprint), so concurrent kernels can only interleave counter
//! increments, never change their totals.

use harmonia::governor::{Ed2Objective, Governor, PowerTable};
use harmonia_power::PowerModel;
use harmonia_sim::{
    CacheStats, CachedModel, CounterSample, Decision, KernelProfile, PlanStats, SimCache,
    SimResult, SweepPlan, TimingModel,
};
use harmonia_types::{ConfigSpace, HwConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Shared sweep plans and simulation cache for a whole fleet.
pub struct PlanStore<'a> {
    model: &'a dyn TimingModel,
    power: &'a PowerModel,
    /// The sweep grid, materialized once for every plan.
    configs: Vec<HwConfig>,
    /// Affine `card_pwr` coefficients per grid lane (frontier bound).
    affine: PowerTable,
    cache: SimCache,
    /// One plan per kernel fingerprint. The outer lock only guards the
    /// map; each plan's own mutex serializes all sweep and cache work for
    /// that kernel.
    plans: RwLock<HashMap<u64, Arc<Mutex<SweepPlan>>>>,
}

impl<'a> PlanStore<'a> {
    /// Creates an empty store over the given models and the full HD 7970
    /// configuration grid.
    pub fn new(model: &'a dyn TimingModel, power: &'a PowerModel) -> Self {
        let configs: Vec<HwConfig> = ConfigSpace::hd7970().iter().collect();
        let affine = PowerTable::probe(power, &configs);
        Self {
            model,
            power,
            configs,
            affine,
            cache: SimCache::new(),
            plans: RwLock::new(HashMap::new()),
        }
    }

    /// The power model every session projects against.
    pub fn power(&self) -> &'a PowerModel {
        self.power
    }

    /// The sweep grid, in decision order.
    pub fn configs(&self) -> &[HwConfig] {
        &self.configs
    }

    /// The kernel's plan, created on first use. Read-locks the map on the
    /// hot path; only a genuinely new fingerprint takes the write lock.
    fn plan_for(&self, kernel: &KernelProfile) -> Arc<Mutex<SweepPlan>> {
        let key = kernel.cache_key();
        if let Some(plan) = self.plans.read().expect("plan map poisoned").get(&key) {
            return Arc::clone(plan);
        }
        let mut map = self.plans.write().expect("plan map poisoned");
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(Mutex::new(SweepPlan::new(self.configs.clone())))),
        )
    }

    /// The ED²-optimal decision for one invocation, served by the kernel's
    /// shared plan: one batched cold sweep per kernel fleet-wide, memo
    /// replay for every repeat, frontier-only re-sweeps for new phase
    /// scales.
    pub fn decide(&self, kernel: &KernelProfile, iteration: u64) -> Decision {
        let plan = self.plan_for(kernel);
        let mut plan = plan.lock().expect("plan poisoned");
        let cached = CachedModel::new(self.model, &self.cache);
        let objective = Ed2Objective::new(self.power, &self.affine);
        plan.decide(&cached, kernel, iteration, &objective)
    }

    /// Simulates one invocation through the shared cache, serialized by
    /// the kernel's plan lock so the accounting stays deterministic.
    pub fn simulate(&self, kernel: &KernelProfile, cfg: HwConfig, iteration: u64) -> SimResult {
        let plan = self.plan_for(kernel);
        let _guard = plan.lock().expect("plan poisoned");
        self.cache.simulate(self.model, cfg, kernel, iteration)
    }

    /// Number of distinct kernel fingerprints planned so far.
    pub fn unique_kernels(&self) -> usize {
        self.plans.read().expect("plan map poisoned").len()
    }

    /// Shared-cache accounting snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Sweep accounting summed over every kernel's plan, in fingerprint
    /// order-independent (commutative integer) totals.
    pub fn plan_stats(&self) -> PlanStats {
        let map = self.plans.read().expect("plan map poisoned");
        let mut total = PlanStats::default();
        for plan in map.values() {
            let s = plan.lock().expect("plan poisoned").stats();
            total.cold_sweeps += s.cold_sweeps;
            total.incremental_sweeps += s.incremental_sweeps;
            total.memo_hits += s.memo_hits;
            total.exact_lanes += s.exact_lanes;
        }
        total
    }
}

impl std::fmt::Debug for PlanStore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanStore")
            .field("kernels", &self.unique_kernels())
            .field("cache_entries", &self.cache.len())
            .finish()
    }
}

/// A per-session governor view over a shared [`PlanStore`]: every decision
/// is the store's ED² argmin, so N sessions running the same kernel cost
/// one sweep total. Stateless — all learning lives in the shared plans —
/// which is what makes fleet devices interchangeable and their reports
/// independent of scheduling order.
pub struct SharedOracleGovernor<'s, 'a> {
    store: &'s PlanStore<'a>,
}

impl<'s, 'a> SharedOracleGovernor<'s, 'a> {
    /// A governor view over `store`.
    pub fn new(store: &'s PlanStore<'a>) -> Self {
        Self { store }
    }

    /// The shared store behind this view.
    pub fn store(&self) -> &'s PlanStore<'a> {
        self.store
    }
}

impl Governor for SharedOracleGovernor<'_, '_> {
    fn name(&self) -> &str {
        "fleet:oracle"
    }

    fn decide(&mut self, kernel: &KernelProfile, iteration: u64) -> HwConfig {
        self.store.decide(kernel, iteration).config
    }

    fn observe(
        &mut self,
        _kernel: &KernelProfile,
        _iteration: u64,
        _cfg: HwConfig,
        _counters: &CounterSample,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::{DecisionKind, IntervalModel};
    use harmonia_workloads::suite;

    #[test]
    fn one_cold_sweep_serves_every_session() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let store = PlanStore::new(&model, &power);
        let k = &suite::stencil().kernels[0];
        let first = store.decide(k, 0);
        assert_eq!(first.kind, DecisionKind::Cold);
        for _ in 0..8 {
            let d = store.decide(k, 0);
            assert_eq!(d.kind, DecisionKind::Memo);
            assert_eq!(d.config, first.config);
            assert_eq!(d.result, first.result);
        }
        let stats = store.plan_stats();
        assert_eq!(stats.cold_sweeps, 1);
        assert_eq!(stats.memo_hits, 8);
        assert_eq!(store.unique_kernels(), 1);
        assert_eq!(store.cache_stats().misses, store.configs().len());
    }

    #[test]
    fn shared_decisions_match_a_private_oracle() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let store = PlanStore::new(&model, &power);
        let mut shared = SharedOracleGovernor::new(&store);
        let mut solo = harmonia::governor::OracleGovernor::new(&model, &power);
        for app in [suite::maxflops(), suite::devicememory(), suite::stencil()] {
            for k in &app.kernels {
                for i in 0..3 {
                    assert_eq!(shared.decide(k, i), solo.decide(k, i), "{} it {i}", k.name);
                }
            }
        }
    }

    #[test]
    fn grid_lookups_after_the_cold_sweep_are_hits() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let store = PlanStore::new(&model, &power);
        let k = &suite::stencil().kernels[0];
        let d = store.decide(k, 0);
        let misses = store.cache_stats().misses;
        // Any grid configuration — the argmin, the grid floor — is already
        // cached by the cold sweep, so accounting sims cost no model work.
        assert_eq!(store.simulate(k, d.config, 0), d.result);
        let _ = store.simulate(k, HwConfig::min_hd7970(), 0);
        assert_eq!(store.cache_stats().misses, misses);
    }
}
