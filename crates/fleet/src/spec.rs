//! Fleet policy specs — the fleet-level generalization of the core
//! registry's [`PolicySpec`](harmonia::governor::PolicySpec) names.
//!
//! | spec | meaning |
//! |---|---|
//! | `fleet:oracle` | shared-store ED² oracle on every device, no budget |
//! | `fleet:capped[@W]` | one global cluster cap, water-filled across devices (default [`DEFAULT_CAP`] × devices) |
//!
//! Budgets follow the registry convention: `@<watts>` with an optional `W`
//! suffix, e.g. `fleet:capped@150000` or `fleet:capped@150000W`.

use harmonia::governor::DEFAULT_CAP;
use harmonia_types::Watts;
use std::fmt;
use std::str::FromStr;

/// A parsed fleet policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetSpec {
    /// Shared-store oracle, no power budget.
    Oracle,
    /// Global cluster cap: explicit watts, or `None` for the default of
    /// [`DEFAULT_CAP`] per device (resolved against the fleet size at run
    /// time).
    Capped(Option<Watts>),
}

impl FleetSpec {
    /// The global cap for a fleet of `devices`, if this spec enforces one.
    pub fn global_cap(&self, devices: usize) -> Option<Watts> {
        match self {
            FleetSpec::Oracle => None,
            FleetSpec::Capped(Some(w)) => Some(*w),
            FleetSpec::Capped(None) => Some(DEFAULT_CAP * devices as f64),
        }
    }
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetSpec::Oracle => write!(f, "fleet:oracle"),
            FleetSpec::Capped(None) => write!(f, "fleet:capped"),
            FleetSpec::Capped(Some(w)) => write!(f, "fleet:capped@{:.0}", w.value()),
        }
    }
}

impl FromStr for FleetSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (base, suffix) = match s.split_once('@') {
            Some((base, suffix)) => (base, Some(suffix)),
            None => (s, None),
        };
        match base {
            "fleet:oracle" => match suffix {
                None => Ok(FleetSpec::Oracle),
                Some(_) => Err(format!("'{s}': fleet:oracle takes no budget")),
            },
            "fleet:capped" => match suffix {
                None => Ok(FleetSpec::Capped(None)),
                Some(raw) => {
                    let raw = raw.strip_suffix('W').unwrap_or(raw);
                    let watts: f64 = raw
                        .parse()
                        .map_err(|_| format!("'{s}': bad budget '{raw}'"))?;
                    if !watts.is_finite() || watts <= 0.0 {
                        return Err(format!("'{s}': budget must be positive finite watts"));
                    }
                    Ok(FleetSpec::Capped(Some(Watts(watts))))
                }
            },
            _ => Err(format!(
                "unknown fleet spec '{s}' (try fleet:oracle or fleet:capped[@W])"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_display() {
        for s in ["fleet:oracle", "fleet:capped", "fleet:capped@150000"] {
            let spec: FleetSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
        assert_eq!(
            "fleet:capped@150000W".parse::<FleetSpec>().unwrap(),
            FleetSpec::Capped(Some(Watts(150000.0)))
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("fleet:oracle@185".parse::<FleetSpec>().is_err());
        assert!("fleet:capped@zero".parse::<FleetSpec>().is_err());
        assert!("fleet:capped@-5".parse::<FleetSpec>().is_err());
        assert!("fleet:capped@inf".parse::<FleetSpec>().is_err());
        assert!("fleet:harmonia".parse::<FleetSpec>().is_err());
        assert!("oracle".parse::<FleetSpec>().is_err());
    }

    #[test]
    fn default_cap_scales_with_the_fleet() {
        let spec = FleetSpec::Capped(None);
        assert_eq!(spec.global_cap(10), Some(DEFAULT_CAP * 10.0));
        assert_eq!(FleetSpec::Oracle.global_cap(10), None);
        assert_eq!(
            FleetSpec::Capped(Some(Watts(500.0))).global_cap(10),
            Some(Watts(500.0))
        );
    }
}
