//! The fleet scheduler: lock-step ticks over many device sessions.
//!
//! Every tick has three phases:
//!
//! 1. **Re-balance (serial).** For capped fleets the
//!    [`ClusterGovernor`] water-fills the global cap over the demand
//!    telemetry merged from the previous tick (tick 0 uses the
//!    conservative full-busy projection) and each device's clamp is
//!    re-targeted with [`DeviceSession::set_cap`].
//! 2. **Step (parallel).** Every device runs one invocation of each of
//!    its kernels over the shared [`SweepPool`] — the batched decision
//!    API. The pool claims each device exactly once per tick; all shared
//!    plan/cache state is serialized per kernel inside the
//!    [`PlanStore`].
//! 3. **Merge (serial, device-id order).** Tick outcomes are reduced in
//!    a fixed order — cluster power sums, violation checks, telemetry for
//!    the next re-balance — so every reported number is byte-identical
//!    for any worker count.
//!
//! Repeated [`FleetScheduler::run`] calls share the same store: the first
//! run pays the cold sweeps and later runs are fully warm, which is how
//! the fleet bench measures steady-state decision throughput.

use crate::cluster::{ClusterGovernor, DeviceDemand};
use crate::device::{DeviceSession, TickOutcome};
use crate::report::{FleetReport, FleetRun};
use crate::spec::FleetSpec;
use crate::store::PlanStore;
use harmonia_power::{Activity, PowerModel};
use harmonia_sim::sweep::run_indexed_on;
use harmonia_sim::{SweepPool, TimingModel};
use harmonia_workloads::Application;
use std::sync::Mutex;
use std::time::Instant;

/// Drives a fleet of device sessions in lock-step ticks.
pub struct FleetScheduler<'a> {
    store: PlanStore<'a>,
    spec: FleetSpec,
    ticks: u64,
    /// Private pool override; `None` uses the process-shared pool.
    pool: Option<SweepPool>,
}

impl<'a> FleetScheduler<'a> {
    /// A scheduler over the given models and policy, defaulting to 16
    /// ticks on the process-shared sweep pool. The models define device
    /// class 0; heterogeneous fleets add further classes with
    /// [`with_class`](Self::with_class).
    pub fn new(model: &'a dyn TimingModel, power: &'a PowerModel, spec: FleetSpec) -> Self {
        Self {
            store: PlanStore::new(model, power),
            spec,
            ticks: 16,
            pool: None,
        }
    }

    /// Registers another device class (its own timing model, power model,
    /// and configuration grid) for [`run_mixed`](Self::run_mixed) fleets.
    /// Classes are numbered in registration order, starting after class 0.
    pub fn with_class(mut self, model: &'a dyn TimingModel, power: &'a PowerModel) -> Self {
        self.store.add_class(model, power);
        self
    }

    /// Sets the number of scheduler ticks per run.
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// Steps devices over a private pool instead of the process-shared
    /// one — how the determinism tests pin exact worker counts.
    pub fn with_pool(mut self, pool: SweepPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The shared plan/cache store (warm across runs).
    pub fn store(&self) -> &PlanStore<'a> {
        &self.store
    }

    /// The policy spec this scheduler enforces.
    pub fn spec(&self) -> FleetSpec {
        self.spec
    }

    /// Runs a homogeneous class-0 fleet: one device session per
    /// application in `apps` (device id = index), for the configured
    /// number of ticks. The store stays warm across calls.
    pub fn run(&self, apps: &[Application]) -> FleetRun {
        let assignments: Vec<(usize, Application)> =
            apps.iter().map(|app| (0, app.clone())).collect();
        self.run_mixed(&assignments)
    }

    /// Runs a (possibly heterogeneous) fleet: each `(class, app)` pair
    /// becomes one device session of that class (device id = index).
    /// Every class decides on its own grid with its own models; the
    /// cluster governor water-fills one global cap across all of them,
    /// so a 50 W edge part and a 700 W datacenter part can share a budget
    /// with their different floors and ceilings respected.
    pub fn run_mixed(&self, assignments: &[(usize, Application)]) -> FleetRun {
        let start = Instant::now();
        let devices = assignments.len();
        let global_cap = self.spec.global_cap(devices);
        let cluster = global_cap.map(ClusterGovernor::new);
        // Conservative pre-observation telemetry, per class: a fully busy
        // card at the class's grid floor and ceiling bounds any real
        // activity from above, so the tick-0 allocation is safe.
        let conservative: Vec<(f64, f64)> = (0..self.store.classes())
            .map(|c| {
                let power = self.store.power_of(c);
                let busy = Activity::streaming_on(self.store.grid_of(c), 1.0, 1.0);
                (
                    power.card_pwr(self.store.floor_of(c), &busy).value(),
                    power.card_pwr(self.store.boost_of(c), &busy).value(),
                )
            })
            .collect();
        let mut telemetry: Vec<DeviceDemand> = assignments
            .iter()
            .map(|&(class, _)| {
                let (floor_w, boost_w) = conservative[class];
                DeviceDemand {
                    floor: floor_w,
                    demand: boost_w,
                    weight: 0.0,
                }
            })
            .collect();
        let sessions: Vec<Mutex<DeviceSession<'_, 'a>>> = assignments
            .iter()
            .enumerate()
            .map(|(id, (class, app))| {
                Mutex::new(match global_cap {
                    // The initial share is refined by the first re-balance
                    // before any decision is made.
                    Some(cap) => DeviceSession::capped_in_class(
                        id,
                        *class,
                        app.clone(),
                        &self.store,
                        cap * (1.0 / devices.max(1) as f64),
                    ),
                    None => DeviceSession::oracle_in_class(id, *class, app.clone(), &self.store),
                })
            })
            .collect();
        let mut cluster_violation_ticks = 0u64;
        let mut infeasible_ticks = 0u64;
        let mut max_cluster_power = 0.0f64;
        for tick in 0..self.ticks {
            if let Some(cluster) = &cluster {
                let alloc = cluster.partition(&telemetry);
                if alloc.infeasible {
                    infeasible_ticks += 1;
                }
                for (session, cap) in sessions.iter().zip(&alloc.caps) {
                    session.lock().expect("session poisoned").set_cap(*cap);
                }
            }
            let outcomes: Vec<TickOutcome> = run_indexed_on(self.pool(), devices, devices, |i| {
                sessions[i].lock().expect("session poisoned").step(tick)
            });
            // Serial merge in device-id order: fixed-order float sums keep
            // the report bit-stable for any worker interleaving.
            let mut cluster_power = 0.0f64;
            for (slot, outcome) in telemetry.iter_mut().zip(&outcomes) {
                cluster_power += outcome.tick_power_w;
                *slot = outcome.demand;
            }
            max_cluster_power = max_cluster_power.max(cluster_power);
            if let Some(cap) = global_cap {
                if cluster_power > cap.value() {
                    cluster_violation_ticks += 1;
                }
            }
        }
        let per_device = sessions
            .iter()
            .map(|s| s.lock().expect("session poisoned").report())
            .collect();
        let report = FleetReport {
            spec: self.spec.to_string(),
            devices,
            ticks: self.ticks,
            global_cap_w: global_cap.map(|w| w.value()),
            per_device,
            cluster_violation_ticks,
            infeasible_ticks,
            max_cluster_power_w: max_cluster_power,
            cache: self.store.cache_stats(),
            plans: self.store.plan_stats(),
            unique_kernels: self.store.unique_kernels(),
        };
        FleetRun {
            report,
            wall: start.elapsed(),
        }
    }

    fn pool(&self) -> &SweepPool {
        match &self.pool {
            Some(pool) => pool,
            None => harmonia_sim::pool::shared(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::IntervalModel;
    use harmonia_workloads::suite;

    fn fleet(n: usize) -> Vec<Application> {
        (0..n).map(|_| suite::stencil()).collect()
    }

    #[test]
    fn a_capped_fleet_honors_the_global_cap_on_every_tick() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        // Tight enough to engage every clamp (stencil draws well over
        // 100 W unconstrained), loose enough to be feasible.
        let spec = "fleet:capped@1200".parse().unwrap();
        let sched = FleetScheduler::new(&model, &power, spec).with_ticks(8);
        let run = sched.run(&fleet(8));
        let r = &run.report;
        assert_eq!(r.devices, 8);
        assert_eq!(r.cluster_violation_ticks, 0, "max draw {}", r.max_cluster_power_w);
        assert_eq!(r.infeasible_ticks, 0);
        assert!(r.max_cluster_power_w <= 1200.0);
        assert!(r.max_cluster_power_w > 0.0);
        for d in &r.per_device {
            assert!(d.final_cap_w.is_some());
            assert!(d.ed2 > 0.0);
        }
    }

    #[test]
    fn the_store_stays_warm_across_runs() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let sched = FleetScheduler::new(&model, &power, FleetSpec::Oracle).with_ticks(4);
        let first = sched.run(&fleet(4));
        let cold = first.report.plans.cold_sweeps;
        assert_eq!(cold, first.report.unique_kernels, "one cold sweep per kernel");
        let second = sched.run(&fleet(4));
        assert_eq!(
            second.report.plans.cold_sweeps, cold,
            "a warm store must not re-sweep"
        );
        assert_eq!(second.report.cache.misses, first.report.cache.misses);
    }

    #[test]
    fn capping_degrades_ed2_monotonically_at_the_fleet_level() {
        // A fleet under a tight budget cannot beat the unconstrained
        // oracle on ED² — the clamp only removes options.
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let free = FleetScheduler::new(&model, &power, FleetSpec::Oracle)
            .with_ticks(6)
            .run(&fleet(2));
        let tight = FleetScheduler::new(&model, &power, "fleet:capped@260".parse().unwrap())
            .with_ticks(6)
            .run(&fleet(2));
        let free_ed2: f64 = free.report.per_device.iter().map(|d| d.ed2).sum();
        let tight_ed2: f64 = tight.report.per_device.iter().map(|d| d.ed2).sum();
        assert!(
            tight_ed2 >= free_ed2,
            "clamped fleet ED² {tight_ed2} beat the unconstrained {free_ed2}"
        );
    }

    #[test]
    fn a_mixed_device_fleet_shares_one_budget_across_classes() {
        use harmonia_types::DeviceSpec;
        let hd = IntervalModel::default();
        let hd_power = PowerModel::hd7970();
        let orin = DeviceSpec::lookup("jetson-orin").unwrap();
        let orin_model = IntervalModel::new(orin.gpu.clone());
        let orin_power = PowerModel::for_device(&orin);
        // Tight enough to clamp the hd7970s, but feasible: the jetson
        // floor is tiny next to the hd7970's.
        let spec = "fleet:capped@700".parse().unwrap();
        let sched = FleetScheduler::new(&hd, &hd_power, spec)
            .with_class(&orin_model, &orin_power)
            .with_ticks(6);
        let assignments: Vec<(usize, Application)> = (0..6)
            .map(|i| (i % 2, suite::stencil()))
            .collect();
        let run = sched.run_mixed(&assignments);
        let r = &run.report;
        assert_eq!(r.devices, 6);
        assert_eq!(r.cluster_violation_ticks, 0, "max draw {}", r.max_cluster_power_w);
        assert_eq!(r.infeasible_ticks, 0);
        // One plan per (class, kernel): both classes planned the same app.
        assert_eq!(r.unique_kernels as u64, 2 * suite::stencil().kernels.len() as u64);
        let hd_dev = &r.per_device[0];
        let orin_dev = &r.per_device[1];
        assert_eq!(hd_dev.class, 0);
        assert_eq!(orin_dev.class, 1);
        // Different silicon, different decisions and draw: the digests
        // must differ, and the edge part's cap share should sit well
        // below the datacenter part's.
        assert_ne!(hd_dev.config_digest, orin_dev.config_digest);
        assert!(
            orin_dev.final_cap_w.unwrap() < hd_dev.final_cap_w.unwrap(),
            "orin {}W vs hd7970 {}W",
            orin_dev.final_cap_w.unwrap(),
            hd_dev.final_cap_w.unwrap()
        );
        // Same-class devices still get bit-identical treatment.
        assert_eq!(r.per_device[2].ed2.to_bits(), hd_dev.ed2.to_bits());
        assert_eq!(r.per_device[3].ed2.to_bits(), orin_dev.ed2.to_bits());
    }

    #[test]
    fn symmetric_capped_devices_get_identical_treatment() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let spec = "fleet:capped@900".parse().unwrap();
        let run = FleetScheduler::new(&model, &power, spec)
            .with_ticks(6)
            .run(&fleet(6));
        let first = &run.report.per_device[0];
        for d in &run.report.per_device[1..] {
            assert_eq!(d.ed2.to_bits(), first.ed2.to_bits(), "device {}", d.id);
            assert_eq!(d.config_digest, first.config_digest);
            assert_eq!(
                d.final_cap_w.unwrap().to_bits(),
                first.final_cap_w.unwrap().to_bits()
            );
        }
    }
}
