//! Deterministic fleet results, and their bit-exact canonical form.
//!
//! [`FleetReport`] holds only values that are reproducible for any worker
//! interleaving: per-device accounting, cluster cap compliance, and the
//! shared-store accounting totals. Wall-clock throughput lives in
//! [`FleetRun`], *outside* the report, so byte-comparing reports across
//! thread counts is meaningful. [`FleetReport::canonical`] renders every
//! float as its IEEE-754 bit pattern — the form the determinism tests and
//! the CI smoke leg compare.

use crate::device::DeviceReport;
use harmonia_sim::{CacheStats, PlanStats};
use std::fmt::Write as _;
use std::time::Duration;

/// The deterministic outcome of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The policy spec the fleet ran (display form).
    pub spec: String,
    /// Number of device sessions.
    pub devices: usize,
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// The global cluster cap, when the spec enforced one.
    pub global_cap_w: Option<f64>,
    /// Per-device accounting, in device-id order.
    pub per_device: Vec<DeviceReport>,
    /// Ticks whose summed device draw exceeded the global cap.
    pub cluster_violation_ticks: u64,
    /// Ticks where even the grid floors exceeded the cap (no partition
    /// could honor it).
    pub infeasible_ticks: u64,
    /// Largest summed cluster draw seen on any tick, watts.
    pub max_cluster_power_w: f64,
    /// Shared-cache accounting at the end of the run.
    pub cache: CacheStats,
    /// Sweep-plan accounting summed over every kernel.
    pub plans: PlanStats,
    /// Distinct kernel fingerprints the store planned.
    pub unique_kernels: usize,
}

impl FleetReport {
    /// Total decisions across the fleet.
    pub fn total_decisions(&self) -> u64 {
        self.per_device.iter().map(|d| d.decisions).sum()
    }

    /// Total device-local cap violations across the fleet.
    pub fn total_device_violations(&self) -> u64 {
        self.per_device.iter().map(|d| d.cap_violations).sum()
    }

    /// A bit-exact textual form: every `f64` appears as its hexadecimal
    /// IEEE-754 bit pattern, so two reports are byte-identical iff every
    /// deterministic quantity matches to the last bit. This is what the
    /// interleave-determinism tests compare across worker counts.
    pub fn canonical(&self) -> String {
        fn bits(x: f64) -> String {
            format!("{:016x}", x.to_bits())
        }
        let mut out = String::new();
        let _ = writeln!(out, "spec={} devices={} ticks={}", self.spec, self.devices, self.ticks);
        let _ = writeln!(
            out,
            "cap={} violations={} infeasible={} max_power={}",
            self.global_cap_w.map_or_else(|| "none".into(), bits),
            self.cluster_violation_ticks,
            self.infeasible_ticks,
            bits(self.max_cluster_power_w),
        );
        let _ = writeln!(
            out,
            "cache hits={} misses={} entries={}",
            self.cache.hits, self.cache.misses, self.cache.entries
        );
        let _ = writeln!(
            out,
            "plans cold={} incremental={} memo={} lanes={} kernels={}",
            self.plans.cold_sweeps,
            self.plans.incremental_sweeps,
            self.plans.memo_hits,
            self.plans.exact_lanes,
            self.unique_kernels,
        );
        for d in &self.per_device {
            let _ = writeln!(
                out,
                "dev {} class={} app={} gov={} time={} energy={} ed2={} decisions={} violations={} digest={:016x} cap={}",
                d.id,
                d.class,
                d.app,
                d.governor,
                bits(d.total_time.value()),
                bits(d.card_energy.value()),
                bits(d.ed2),
                d.decisions,
                d.cap_violations,
                d.config_digest,
                d.final_cap_w.map_or_else(|| "none".into(), bits),
            );
        }
        out
    }
}

/// One fleet execution: the deterministic report plus the wall-clock
/// measurements that are *not* part of it.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// The deterministic results.
    pub report: FleetReport,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

impl FleetRun {
    /// Aggregate decision throughput (decisions per wall-clock second).
    pub fn decisions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.report.total_decisions() as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}
