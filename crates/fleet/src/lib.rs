//! Fleet-scale governor service: many device sessions, one power budget.
//!
//! Harmonia (the core crate) governs a single GPU. This crate is the
//! deployment layer the ROADMAP's north star asks for: a [`FleetScheduler`]
//! drives hundreds to thousands of concurrent device sessions in lock-step
//! ticks, batching every device's per-tick decision work over the shared
//! work-stealing [`SweepPool`](harmonia_sim::SweepPool) from `harmonia-sim`.
//! Three pieces make fleet scale cheap and safe:
//!
//! * [`PlanStore`] — a cross-session sweep-plan and simulation-cache store
//!   keyed by *(device class, kernel fingerprint)*. The first device of a
//!   class to meet a kernel pays the one batched cold sweep; every other
//!   device of that class running the same kernel replays the memoized
//!   decision (`BENCH_sweep.json` puts the warm re-decision at ~0.1 µs, so
//!   fleet cost is orchestration, not modeling). Heterogeneous fleets
//!   register extra catalog devices with
//!   [`FleetScheduler::with_class`]/[`PlanStore::add_class`] and run via
//!   [`FleetScheduler::run_mixed`]; the shared cache never aliases across
//!   devices because its key embeds the device fingerprint.
//! * [`ClusterGovernor`] — partitions one global power cap across devices
//!   by water-filling on each device's predicted ED² marginal benefit per
//!   watt, re-balancing every tick as workloads phase-shift. Each device
//!   enforces its share with the existing
//!   [`CappedGovernor`](harmonia::governor::CappedGovernor) stack,
//!   unchanged.
//! * Deterministic merge — device steps run in parallel, but every
//!   reduction (cluster power sums, cap partitioning, report assembly)
//!   happens serially in device-id order, and all shared-cache access for
//!   one kernel is serialized through that kernel's plan lock. The
//!   resulting [`FleetReport`] is byte-identical for any worker count;
//!   [`FleetReport::canonical`] exposes the bit-exact form tests compare.
//!
//! Policies parse from [`FleetSpec`]: `fleet:oracle` (shared-store oracle,
//! no budget) and `fleet:capped[@W]` (global cluster cap, default
//! [`DEFAULT_CAP`](harmonia::governor::DEFAULT_CAP) per device) — the
//! fleet-level generalization of the core registry's `capped[@W]`.

pub mod cluster;
pub mod device;
pub mod report;
pub mod scheduler;
pub mod spec;
pub mod store;

pub use cluster::{Allocation, ClusterGovernor, DeviceDemand};
pub use device::{DeviceReport, DeviceSession, TickOutcome};
pub use report::{FleetReport, FleetRun};
pub use scheduler::FleetScheduler;
pub use spec::FleetSpec;
pub use store::{PlanStore, SharedOracleGovernor};
