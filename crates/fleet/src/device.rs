//! One device's session: a per-device governor stack over the shared
//! [`PlanStore`], stepped once per scheduler tick.
//!
//! A session owns its application, its governor stack (the shared oracle,
//! optionally wrapped in the core [`CappedGovernor`] when the fleet
//! enforces a cluster cap), and its accounting — total time, card energy,
//! a rolling FNV-1a digest of every granted configuration, and the cap
//! telemetry the [`ClusterGovernor`](crate::cluster::ClusterGovernor)
//! water-fills on. Everything a step touches is either session-local or
//! goes through the store's per-kernel locks, so stepping devices in
//! parallel is safe and their accounting is interleaving-independent.

use crate::cluster::DeviceDemand;
use crate::store::{PlanStore, SharedOracleGovernor};
use harmonia::governor::{CappedGovernor, Governor};
use harmonia_power::Activity;
use harmonia_types::{Joules, Seconds, Watts};
use harmonia_workloads::Application;

/// The per-device policy stack: the shared-store oracle, bare or under a
/// power-cap clamp.
enum DeviceGovernor<'s, 'a> {
    Oracle(SharedOracleGovernor<'s, 'a>),
    Capped(CappedGovernor<'s, SharedOracleGovernor<'s, 'a>>),
}

/// What one device contributes to a tick's serial merge: its peak power
/// during the tick plus the demand telemetry the next re-balance
/// water-fills on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickOutcome {
    /// Peak projected card power across the tick's invocations, watts.
    pub tick_power_w: f64,
    /// Cap telemetry for the next partition (capped fleets only).
    pub demand: DeviceDemand,
}

/// A device's final, deterministic accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device id (fleet index).
    pub id: usize,
    /// Device class (index into the store's registered classes).
    pub class: usize,
    /// Application the device ran.
    pub app: String,
    /// Governor stack name (reflects the final cap share when capped).
    pub governor: String,
    /// Total kernel execution time, seconds.
    pub total_time: Seconds,
    /// Total card energy, joules.
    pub card_energy: Joules,
    /// Energy·delay² over the whole session.
    pub ed2: f64,
    /// Decisions made (kernel invocations governed).
    pub decisions: u64,
    /// Device-local cap violations (the clamp's 5%-tolerance accounting).
    pub cap_violations: u64,
    /// FNV-1a digest of the granted configuration sequence.
    pub config_digest: u64,
    /// The device's final cap share, when the fleet ran capped.
    pub final_cap_w: Option<f64>,
}

/// One concurrent device session.
pub struct DeviceSession<'s, 'a> {
    id: usize,
    class: usize,
    app: Application,
    governor: DeviceGovernor<'s, 'a>,
    store: &'s PlanStore<'a>,
    total_time: Seconds,
    card_energy: Joules,
    decisions: u64,
    digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut digest: u64, words: &[u64]) -> u64 {
    for &w in words {
        for shift in [0, 16, 32, 48] {
            digest ^= (w >> shift) & 0xffff;
            digest = digest.wrapping_mul(FNV_PRIME);
        }
    }
    digest
}

impl<'s, 'a> DeviceSession<'s, 'a> {
    /// An uncapped class-0 session: the shared oracle governs directly.
    pub fn oracle(id: usize, app: Application, store: &'s PlanStore<'a>) -> Self {
        Self::oracle_in_class(id, 0, app, store)
    }

    /// An uncapped session of device class `class`.
    pub fn oracle_in_class(id: usize, class: usize, app: Application, store: &'s PlanStore<'a>) -> Self {
        Self::build(
            id,
            class,
            app,
            store,
            DeviceGovernor::Oracle(SharedOracleGovernor::for_class(store, class)),
        )
    }

    /// A capped class-0 session: the shared oracle under a
    /// [`CappedGovernor`] clamp at the device's initial cap share.
    pub fn capped(id: usize, app: Application, store: &'s PlanStore<'a>, cap: Watts) -> Self {
        Self::capped_in_class(id, 0, app, store, cap)
    }

    /// A capped session of device class `class`: the clamp projects power
    /// with that class's power model and steps along its grid.
    pub fn capped_in_class(
        id: usize,
        class: usize,
        app: Application,
        store: &'s PlanStore<'a>,
        cap: Watts,
    ) -> Self {
        let clamp = CappedGovernor::new(
            SharedOracleGovernor::for_class(store, class),
            store.power_of(class),
            cap,
        );
        Self::build(id, class, app, store, DeviceGovernor::Capped(clamp))
    }

    fn build(
        id: usize,
        class: usize,
        app: Application,
        store: &'s PlanStore<'a>,
        governor: DeviceGovernor<'s, 'a>,
    ) -> Self {
        Self {
            id,
            class,
            app,
            governor,
            store,
            total_time: Seconds(0.0),
            card_energy: Joules(0.0),
            decisions: 0,
            digest: FNV_OFFSET,
        }
    }

    /// Device id (fleet index).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The session's device class.
    pub fn class(&self) -> usize {
        self.class
    }

    /// Re-targets the device's cap share (no-op for uncapped sessions).
    /// Called by the scheduler's serial re-balance phase.
    pub fn set_cap(&mut self, cap: Watts) {
        if let DeviceGovernor::Capped(g) = &mut self.governor {
            g.set_cap(cap);
        }
    }

    /// Runs one invocation of every kernel in the device's application at
    /// iteration `tick`, accumulating time/energy/digest and returning the
    /// tick's merge contribution. Safe to call from any pool worker: all
    /// shared state goes through the store's per-kernel locks.
    pub fn step(&mut self, tick: u64) -> TickOutcome {
        let capped = matches!(self.governor, DeviceGovernor::Capped(_));
        let power = self.store.power_of(self.class);
        let floor_cfg = self.store.floor_of(self.class);
        let mut tick_power = 0.0_f64;
        let mut demand = DeviceDemand { floor: 0.0, demand: 0.0, weight: 0.0 };
        let mut benefit = 0.0_f64;
        for (ki, kernel) in self.app.kernels.iter().enumerate() {
            // The unconstrained optimum first: for capped fleets it is the
            // demand telemetry; the plan memo makes the governor's own
            // lookup free either way.
            let desired = if capped { Some(self.store.decide_for(self.class, kernel, tick)) } else { None };
            let granted = match &mut self.governor {
                DeviceGovernor::Oracle(g) => g.decide(kernel, tick),
                DeviceGovernor::Capped(g) => g.decide(kernel, tick),
            };
            let result = self.store.simulate_for(self.class, kernel, granted, tick);
            let activity = Activity {
                valu_activity: result.counters.valu_activity(),
                dram_bytes_per_sec: result.counters.dram_bytes_per_sec(),
                dram_traffic_fraction: result.counters.ic_activity,
            };
            let breakdown = power.breakdown(granted, &activity);
            let dt = result.time;
            self.total_time += dt;
            self.card_energy += breakdown.card_pwr() * dt;
            tick_power = tick_power.max(breakdown.card_pwr().value());
            self.digest = fnv(
                self.digest,
                &[
                    ki as u64,
                    u64::from(granted.compute.cu_count()),
                    u64::from(granted.compute.freq().value()),
                    u64::from(granted.memory.bus_freq().value()),
                ],
            );
            self.decisions += 1;
            match &mut self.governor {
                DeviceGovernor::Oracle(g) => g.observe(kernel, tick, granted, &result.counters),
                DeviceGovernor::Capped(g) => g.observe(kernel, tick, granted, &result.counters),
            }
            if let Some(desired) = desired {
                // Projected draw of the floor and the optimum at the
                // activity just observed — the floor sim is a cache hit
                // (the cold sweep covered the whole grid).
                let floor_res = self.store.simulate_for(self.class, kernel, floor_cfg, tick);
                let floor_act = Activity {
                    valu_activity: floor_res.counters.valu_activity(),
                    dram_bytes_per_sec: floor_res.counters.dram_bytes_per_sec(),
                    dram_traffic_fraction: floor_res.counters.ic_activity,
                };
                let p_floor = power.card_pwr(floor_cfg, &floor_act).value();
                let p_want = power
                    .card_pwr(
                        desired.config,
                        &Activity {
                            valu_activity: desired.result.counters.valu_activity(),
                            dram_bytes_per_sec: desired.result.counters.dram_bytes_per_sec(),
                            dram_traffic_fraction: desired.result.counters.ic_activity,
                        },
                    )
                    .value();
                demand.floor = demand.floor.max(p_floor);
                demand.demand = demand.demand.max(p_want);
                // Per-invocation ED² lost by running at the floor instead
                // of the optimum: the marginal benefit the headroom buys.
                let t_f = floor_res.time.value();
                let ed2_floor = p_floor * t_f * t_f * t_f;
                benefit += (ed2_floor - desired.objective).max(0.0);
            }
        }
        let gap = demand.demand - demand.floor;
        demand.weight = if gap > 0.0 { (benefit / gap).max(0.0) } else { 0.0 };
        TickOutcome { tick_power_w: tick_power, demand }
    }

    /// The device's final accounting. The cap-violation count is the
    /// clamp's own 5%-tolerance ledger; uncapped sessions report zero.
    pub fn report(&self) -> DeviceReport {
        let (governor, cap_violations, final_cap_w) = match &self.governor {
            DeviceGovernor::Oracle(g) => (g.name().to_string(), 0, None),
            DeviceGovernor::Capped(g) => {
                (g.name().to_string(), g.cap_violations(), Some(g.cap().value()))
            }
        };
        DeviceReport {
            id: self.id,
            class: self.class,
            app: self.app.name.clone(),
            governor,
            total_time: self.total_time,
            card_energy: self.card_energy,
            ed2: self.card_energy.value() * self.total_time.value() * self.total_time.value(),
            decisions: self.decisions,
            cap_violations,
            config_digest: self.digest,
            final_cap_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_power::PowerModel;
    use harmonia_sim::IntervalModel;
    use harmonia_workloads::suite;

    #[test]
    fn an_uncapped_step_accumulates_time_energy_and_digest() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let store = PlanStore::new(&model, &power);
        let mut dev = DeviceSession::oracle(0, suite::stencil(), &store);
        let out = dev.step(0);
        assert!(out.tick_power_w > 0.0);
        let r = dev.report();
        assert!(r.total_time.value() > 0.0);
        assert!(r.card_energy.value() > 0.0);
        assert_eq!(r.decisions, suite::stencil().kernels.len() as u64);
        assert_ne!(r.config_digest, FNV_OFFSET);
        assert_eq!(r.final_cap_w, None);
        assert_eq!(r.cap_violations, 0);
    }

    #[test]
    fn identical_devices_produce_identical_reports() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let store = PlanStore::new(&model, &power);
        let mut a = DeviceSession::oracle(0, suite::stencil(), &store);
        let mut b = DeviceSession::oracle(1, suite::stencil(), &store);
        for tick in 0..4 {
            a.step(tick);
            b.step(tick);
        }
        let (ra, rb) = (a.report(), b.report());
        assert_eq!(ra.total_time.value().to_bits(), rb.total_time.value().to_bits());
        assert_eq!(ra.card_energy.value().to_bits(), rb.card_energy.value().to_bits());
        assert_eq!(ra.ed2.to_bits(), rb.ed2.to_bits());
        assert_eq!(ra.config_digest, rb.config_digest);
    }

    #[test]
    fn a_tight_cap_shows_up_in_power_and_telemetry() {
        let model = IntervalModel::default();
        let power = PowerModel::hd7970();
        let store = PlanStore::new(&model, &power);
        let mut free = DeviceSession::oracle(0, suite::maxflops(), &store);
        let mut tight = DeviceSession::capped(1, suite::maxflops(), &store, Watts(120.0));
        let free_out = free.step(0);
        let tight_out = tight.step(0);
        assert!(
            tight_out.tick_power_w < free_out.tick_power_w,
            "clamped device must draw less: {} vs {}",
            tight_out.tick_power_w,
            free_out.tick_power_w
        );
        let d = tight_out.demand;
        assert!(d.floor > 0.0 && d.demand > d.floor, "telemetry: {d:?}");
        assert!(d.weight >= 0.0);
        assert!(tight.report().final_cap_w == Some(120.0));
    }
}
