//! Property tests for the configuration space and DVFS tables.

use harmonia_types::{
    ComputeConfig, ConfigSpace, DeviceSpec, DvfsTable, HwConfig, MegaHertz, MemoryConfig, Tunable,
};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = DeviceSpec> {
    (0usize..DeviceSpec::catalog().len()).prop_map(|i| {
        DeviceSpec::lookup(DeviceSpec::catalog()[i]).expect("catalog names resolve")
    })
}

fn arb_config() -> impl Strategy<Value = HwConfig> {
    (0u32..8, 0u32..8, 0u32..7).prop_map(|(cu, f, m)| {
        HwConfig::new(
            ComputeConfig::new(4 + cu * 4, MegaHertz(300 + f * 100)).expect("grid"),
            MemoryConfig::new(MegaHertz(475 + m * 150)).expect("grid"),
        )
    })
}

proptest! {
    #[test]
    fn stepping_stays_on_grid_and_inverts(cfg in arb_config()) {
        let space = ConfigSpace::hd7970();
        for t in Tunable::ALL {
            if let Some(up) = cfg.step_up(t) {
                prop_assert!(space.contains(up));
                prop_assert_eq!(up.step_down(t).expect("inverse"), cfg);
            }
            if let Some(down) = cfg.step_down(t) {
                prop_assert!(space.contains(down));
                prop_assert_eq!(down.step_up(t).expect("inverse"), cfg);
            }
        }
    }

    #[test]
    fn with_fraction_is_idempotent_and_on_grid(cfg in arb_config(), frac in 0.0f64..1.0) {
        let space = ConfigSpace::hd7970();
        for t in Tunable::ALL {
            let once = cfg.with_fraction(t, frac);
            prop_assert!(space.contains(once));
            prop_assert_eq!(once.with_fraction(t, frac), once);
        }
    }

    #[test]
    fn with_fraction_is_monotone(cfg in arb_config(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for t in Tunable::ALL {
            let l = cfg.with_fraction(t, lo);
            let h = cfg.with_fraction(t, hi);
            prop_assert!(l.level(t).index <= h.level(t).index);
        }
    }

    #[test]
    fn level_fraction_round_trips(cfg in arb_config()) {
        for t in Tunable::ALL {
            let level = cfg.level(t);
            prop_assert!((0.0..=1.0).contains(&level.fraction));
            let rebuilt = cfg.with_fraction(t, level.fraction);
            prop_assert_eq!(rebuilt.raw_value(t), cfg.raw_value(t));
        }
    }

    #[test]
    fn hw_ops_per_byte_is_monotone_in_compute_and_antitone_in_memory(cfg in arb_config()) {
        let base = cfg.hw_ops_per_byte();
        if let Some(up) = cfg.step_up(Tunable::CuFreq) {
            prop_assert!(up.hw_ops_per_byte() > base);
        }
        if let Some(up) = cfg.step_up(Tunable::CuCount) {
            prop_assert!(up.hw_ops_per_byte() > base);
        }
        if let Some(up) = cfg.step_up(Tunable::MemFreq) {
            prop_assert!(up.hw_ops_per_byte() < base);
        }
    }

    #[test]
    fn dvfs_voltage_monotone_and_bounded(f in 300u32..=1000) {
        let table = DvfsTable::hd7970();
        let v = table.voltage_for(MegaHertz(f));
        prop_assert!((0.85..=1.19).contains(&v.value()));
        let v_next = table.voltage_for(MegaHertz(f + 50));
        prop_assert!(v_next >= v);
    }

    #[test]
    fn catalog_fractions_land_on_each_devices_grid(
        dev in arb_device(),
        fc in 0.0f64..1.0,
        ff in 0.0f64..1.0,
        fm in 0.0f64..1.0,
    ) {
        let grid = *dev.grid();
        let space = ConfigSpace::for_grid(&grid);
        let cfg = HwConfig::max_on(&grid)
            .with_fraction_on(&grid, Tunable::CuCount, fc)
            .with_fraction_on(&grid, Tunable::CuFreq, ff)
            .with_fraction_on(&grid, Tunable::MemFreq, fm);
        prop_assert!(space.contains(cfg), "{cfg} off the {} grid", dev.name);
        // Stepping on the device's own grid stays on it and inverts.
        for t in Tunable::ALL {
            if let Some(up) = cfg.step_up_on(&grid, t) {
                prop_assert!(space.contains(up));
                prop_assert_eq!(up.step_down_on(&grid, t).expect("inverse"), cfg);
            }
            if let Some(down) = cfg.step_down_on(&grid, t) {
                prop_assert!(space.contains(down));
                prop_assert_eq!(down.step_up_on(&grid, t).expect("inverse"), cfg);
            }
        }
    }

    #[test]
    fn catalog_snap_cu_freq_lands_on_grid(dev in arb_device(), f in 0u32..4000) {
        let grid = *dev.grid();
        let snapped = grid.snap_cu_freq(MegaHertz(f));
        prop_assert!(
            grid.cu_freq_levels().contains(&snapped),
            "{snapped} not a {} CU-frequency level", dev.name
        );
        // Snapping an on-grid frequency is the identity.
        prop_assert_eq!(grid.snap_cu_freq(snapped), snapped);
    }

    #[test]
    fn catalog_dvfs_covers_each_devices_grid(dev in arb_device(), frac in 0.0f64..=1.0) {
        let grid = *dev.grid();
        let span = f64::from(grid.cu_freq_max.value() - grid.cu_freq_min.value());
        let f = MegaHertz(grid.cu_freq_min.value() + (frac * span) as u32);
        let v = dev.dvfs.voltage_for(f);
        prop_assert!(v.value() > 0.0, "{} voltage must be positive at {f}", dev.name);
        let v_up = dev.dvfs.voltage_for(MegaHertz(f.value() + grid.cu_freq_step));
        prop_assert!(v_up >= v, "{} voltage must be monotone in frequency", dev.name);
    }

    #[test]
    fn serde_round_trip_config(cfg in arb_config()) {
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: HwConfig = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, cfg);
    }
}

#[test]
fn space_iteration_is_stable_and_unique() {
    let space = ConfigSpace::hd7970();
    let a: Vec<HwConfig> = space.iter().collect();
    let b: Vec<HwConfig> = space.iter().collect();
    assert_eq!(a, b, "iteration order must be deterministic");
    let mut set = std::collections::HashSet::new();
    for cfg in a {
        assert!(set.insert(cfg), "duplicate config {cfg}");
    }
    assert_eq!(set.len(), 448);
}

#[test]
fn every_catalog_space_is_unique_and_counts_its_levels() {
    for name in DeviceSpec::catalog() {
        let dev = DeviceSpec::lookup(name).expect("catalog names resolve");
        let grid = *dev.grid();
        let space = ConfigSpace::for_grid(&grid);
        let configs: Vec<HwConfig> = space.iter().collect();
        let mut set = std::collections::HashSet::new();
        for cfg in &configs {
            assert!(set.insert(*cfg), "{name}: duplicate config {cfg}");
        }
        assert_eq!(
            set.len(),
            grid.cu_level_count() * grid.cu_freq_level_count() * grid.mem_freq_level_count(),
            "{name}: space size must be the product of the per-tunable level counts"
        );
        assert!(
            space.contains(dev.safe_state()),
            "{name}: the safe state must lie on the device's own grid"
        );
    }
}
