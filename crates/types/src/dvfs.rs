//! DVFS tables: voltage/frequency operating points.
//!
//! Table 1 of the paper gives the HD7970's DPM states (300 MHz @ 0.85 V,
//! 500 MHz @ 0.95 V, 925 MHz @ 1.17 V) plus a 1 GHz boost state at 1.19 V.
//! Harmonia varies the compute clock in 100 MHz steps, so [`DvfsTable`]
//! interpolates the supply voltage piecewise-linearly between the published
//! points — the same voltage-follows-frequency behaviour the real platform's
//! SMU implements.
//!
//! The memory interface voltage is *fixed* (the paper could not scale it;
//! Section 3.3), which [`DvfsTable::memory_voltage`] reflects.

use crate::units::{MegaHertz, Volts};
use serde::Serialize;
use std::fmt;

/// A single dynamic power management state: a frequency/voltage pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DpmState {
    /// State name, e.g. "DPM0".
    pub name: &'static str,
    /// Clock frequency of the state.
    pub freq: MegaHertz,
    /// Supply voltage of the state.
    pub voltage: Volts,
}

impl fmt::Display for DpmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} @ {}", self.name, self.freq, self.voltage)
    }
}

/// The GPU voltage/frequency table (Table 1 plus the boost state), with
/// piecewise-linear voltage interpolation for the intermediate 100 MHz steps
/// Harmonia uses.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DvfsTable {
    states: Vec<DpmState>,
    memory_voltage: Volts,
}

impl DvfsTable {
    /// The HD7970 table: DPM0/1/2 from Table 1 plus the 1 GHz / 1.19 V boost
    /// state mentioned in Section 2.3. Memory voltage is the fixed 1.5 V
    /// GDDR5 rail.
    pub fn hd7970() -> Self {
        Self {
            states: vec![
                DpmState {
                    name: "DPM0",
                    freq: MegaHertz(300),
                    voltage: Volts(0.85),
                },
                DpmState {
                    name: "DPM1",
                    freq: MegaHertz(500),
                    voltage: Volts(0.95),
                },
                DpmState {
                    name: "DPM2",
                    freq: MegaHertz(925),
                    voltage: Volts(1.17),
                },
                DpmState {
                    name: "BOOST",
                    freq: MegaHertz(1000),
                    voltage: Volts(1.19),
                },
            ],
            memory_voltage: Volts(1.5),
        }
    }

    /// Builds a table from explicit DPM states and a fixed memory-rail
    /// voltage. Used by the device catalog to describe non-HD7970 parts.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or not strictly ascending by frequency.
    pub fn from_states(states: Vec<DpmState>, memory_voltage: Volts) -> Self {
        assert!(!states.is_empty(), "DVFS table must not be empty");
        assert!(
            states.windows(2).all(|w| w[0].freq < w[1].freq),
            "DVFS states must ascend strictly by frequency"
        );
        Self {
            states,
            memory_voltage,
        }
    }

    /// The published DPM states, ascending by frequency.
    pub fn states(&self) -> &[DpmState] {
        &self.states
    }

    /// Supply voltage required to run the compute domain at `freq`,
    /// interpolated piecewise-linearly between DPM states and clamped to the
    /// table's end points.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty (the provided constructors never build
    /// an empty table).
    pub fn voltage_for(&self, freq: MegaHertz) -> Volts {
        assert!(!self.states.is_empty(), "DVFS table must not be empty");
        let first = &self.states[0];
        if freq <= first.freq {
            return first.voltage;
        }
        for pair in self.states.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            if freq <= hi.freq {
                let span = f64::from(hi.freq.value() - lo.freq.value());
                let frac = f64::from(freq.value() - lo.freq.value()) / span;
                return Volts(lo.voltage.value() + frac * (hi.voltage.value() - lo.voltage.value()));
            }
        }
        self.states.last().expect("non-empty").voltage
    }

    /// The fixed memory-interface voltage (the platform cannot scale it).
    pub fn memory_voltage(&self) -> Volts {
        self.memory_voltage
    }
}

impl Default for DvfsTable {
    fn default() -> Self {
        Self::hd7970()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_published_states() {
        let t = DvfsTable::hd7970();
        assert_eq!(t.states().len(), 4);
        assert_eq!(t.states()[0].freq, MegaHertz(300));
        assert_eq!(t.states()[0].voltage, Volts(0.85));
        assert_eq!(t.states()[2].freq, MegaHertz(925));
        assert_eq!(t.states()[2].voltage, Volts(1.17));
        assert_eq!(t.states()[3].name, "BOOST");
    }

    #[test]
    fn voltage_exact_at_published_points() {
        let t = DvfsTable::hd7970();
        assert_eq!(t.voltage_for(MegaHertz(300)), Volts(0.85));
        assert_eq!(t.voltage_for(MegaHertz(500)), Volts(0.95));
        assert_eq!(t.voltage_for(MegaHertz(925)), Volts(1.17));
        assert_eq!(t.voltage_for(MegaHertz(1000)), Volts(1.19));
    }

    #[test]
    fn voltage_interpolates_between_points() {
        let t = DvfsTable::hd7970();
        let v400 = t.voltage_for(MegaHertz(400));
        assert!((v400.value() - 0.90).abs() < 1e-12);
        let v700 = t.voltage_for(MegaHertz(700));
        // 500→925 spans 425 MHz and 0.22 V; 200/425 of the way up.
        let expected = 0.95 + 200.0 / 425.0 * 0.22;
        assert!((v700.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn voltage_clamps_outside_table() {
        let t = DvfsTable::hd7970();
        assert_eq!(t.voltage_for(MegaHertz(100)), Volts(0.85));
        assert_eq!(t.voltage_for(MegaHertz(1200)), Volts(1.19));
    }

    #[test]
    fn voltage_is_monotone_in_frequency() {
        let t = DvfsTable::hd7970();
        let mut prev = Volts(0.0);
        for f in (300..=1000).step_by(100) {
            let v = t.voltage_for(MegaHertz(f));
            assert!(v >= prev, "voltage not monotone at {f} MHz");
            prev = v;
        }
    }

    #[test]
    fn memory_voltage_is_fixed() {
        let t = DvfsTable::hd7970();
        assert_eq!(t.memory_voltage(), Volts(1.5));
    }

    #[test]
    fn dpm_state_display() {
        let t = DvfsTable::hd7970();
        let s = t.states()[0].to_string();
        assert!(s.contains("DPM0") && s.contains("300 MHz"));
    }
}
