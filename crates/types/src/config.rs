//! Hardware configuration space of the managed platform.
//!
//! The paper (Section 3.1) manages three tunables on an AMD Radeon HD7970:
//!
//! * **active compute-unit count** — 4 to 32 in steps of 4,
//! * **compute-unit frequency** — 300 MHz to 1 GHz in steps of 100 MHz,
//! * **memory bus frequency** — 475 MHz to 1375 MHz in steps of 150 MHz
//!   (equivalently 90 GB/s to 264 GB/s of bandwidth in steps of ~30 GB/s).
//!
//! A ([`ComputeConfig`], [`MemoryConfig`]) pair is an [`HwConfig`]; the full
//! cross product is [`ConfigSpace`] with 8 × 8 × 7 = 448 points — the
//! "approximately 450" combinations the paper sweeps.
//!
//! The ranges and steps above are one [`GridSpec`] — the HD7970 entry of the
//! device catalog (`crate::device`). Every grid-dependent operation has a
//! `*_on(&GridSpec)` form; the short legacy names are HD7970 conveniences
//! that delegate to [`GridSpec::HD7970`] and remain bit-identical to the
//! pre-catalog code.

use crate::device::GridSpec;
use crate::units::{GigabytesPerSec, MegaHertz};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Minimum number of active compute units.
pub const CU_MIN: u32 = GridSpec::HD7970.cu_min;
/// Maximum number of compute units on the HD7970.
pub const CU_MAX: u32 = GridSpec::HD7970.cu_max;
/// Granularity of compute-unit power gating.
pub const CU_STEP: u32 = GridSpec::HD7970.cu_step;

/// Minimum compute (shader) clock.
pub const CU_FREQ_MIN: MegaHertz = GridSpec::HD7970.cu_freq_min;
/// Maximum compute clock (the 1 GHz boost state).
pub const CU_FREQ_MAX: MegaHertz = GridSpec::HD7970.cu_freq_max;
/// Compute clock granularity.
pub const CU_FREQ_STEP: u32 = GridSpec::HD7970.cu_freq_step;

/// Minimum memory bus clock (90 GB/s of bandwidth).
pub const MEM_FREQ_MIN: MegaHertz = GridSpec::HD7970.mem_freq_min;
/// Maximum memory bus clock (264 GB/s of bandwidth).
pub const MEM_FREQ_MAX: MegaHertz = GridSpec::HD7970.mem_freq_max;
/// Memory bus clock granularity (~30 GB/s of bandwidth).
pub const MEM_FREQ_STEP: u32 = GridSpec::HD7970.mem_freq_step;

/// GDDR5 moves four data words per bus clock.
pub const GDDR5_TRANSFER_RATE: f64 = GridSpec::HD7970.mem_transfer_rate;
/// Six 64-bit dual-channel controllers form a 384-bit interface.
pub const MEM_BUS_WIDTH_BITS: u32 = GridSpec::HD7970.mem_bus_width_bits;
/// Number of memory channels (each controller drives one 64-bit channel pair).
/// The authoritative per-device value is `GpuDescriptor::mem_channels`.
pub const MEM_CHANNELS: u32 = 6;

/// Error returned when constructing a configuration outside the platform's
/// supported range or off its step grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    what: &'static str,
    got: u32,
}

impl ConfigError {
    fn new(what: &'static str, got: u32) -> Self {
        Self { what, got }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.what, self.got)
    }
}

impl Error for ConfigError {}

/// One of the three hardware tunables Harmonia manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tunable {
    /// Number of active compute units (inactive ones are power gated).
    CuCount,
    /// Compute-unit (shader) clock frequency.
    CuFreq,
    /// Memory bus clock frequency (sets memory bandwidth).
    MemFreq,
}

impl Tunable {
    /// All tunables, in the order the paper lists them.
    pub const ALL: [Tunable; 3] = [Tunable::CuCount, Tunable::CuFreq, Tunable::MemFreq];
}

impl fmt::Display for Tunable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tunable::CuCount => write!(f, "#CUs"),
            Tunable::CuFreq => write!(f, "CU freq"),
            Tunable::MemFreq => write!(f, "Mem freq"),
        }
    }
}

/// A discrete level of one tunable: its index on the step grid and the value
/// normalized to `[0, 1]` across the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunableLevel {
    /// 0-based index on the tunable's step grid.
    pub index: usize,
    /// Number of levels on the grid.
    pub count: usize,
    /// `index / (count - 1)`, i.e. 0.0 at minimum and 1.0 at maximum.
    pub fraction: f64,
}

/// Compute-side configuration: active CU count and CU frequency.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct ComputeConfig {
    cu_count: u32,
    freq: MegaHertz,
}

impl ComputeConfig {
    /// Creates a compute configuration on the HD7970 grid, validating range
    /// and step grid.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cu_count` is outside 4..=32 or not a
    /// multiple of 4, or if `freq` is outside 300..=1000 MHz or not a
    /// multiple of 100 MHz.
    pub fn new(cu_count: u32, freq: MegaHertz) -> Result<Self, ConfigError> {
        Self::new_on(&GridSpec::HD7970, cu_count, freq)
    }

    /// Creates a compute configuration on an arbitrary device grid.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cu_count` or `freq` is outside the grid's
    /// range or off its step lattice.
    pub fn new_on(grid: &GridSpec, cu_count: u32, freq: MegaHertz) -> Result<Self, ConfigError> {
        if !(grid.cu_min..=grid.cu_max).contains(&cu_count)
            || !(cu_count - grid.cu_min).is_multiple_of(grid.cu_step)
        {
            return Err(ConfigError::new("CU count", cu_count));
        }
        if freq < grid.cu_freq_min
            || freq > grid.cu_freq_max
            || !(freq.value() - grid.cu_freq_min.value()).is_multiple_of(grid.cu_freq_step)
        {
            return Err(ConfigError::new("CU frequency (MHz)", freq.value()));
        }
        Ok(Self { cu_count, freq })
    }

    /// Minimum compute configuration of the HD7970 (4 CUs at 300 MHz) — the
    /// normalization point of the paper's Figures 3–5.
    pub fn min_hd7970() -> Self {
        Self::min_on(&GridSpec::HD7970)
    }

    /// Maximum compute configuration (32 CUs at the 1 GHz boost clock).
    pub fn max_hd7970() -> Self {
        Self::max_on(&GridSpec::HD7970)
    }

    /// Minimum compute configuration of a device grid.
    pub fn min_on(grid: &GridSpec) -> Self {
        Self {
            cu_count: grid.cu_min,
            freq: grid.cu_freq_min,
        }
    }

    /// Maximum compute configuration of a device grid.
    pub fn max_on(grid: &GridSpec) -> Self {
        Self {
            cu_count: grid.cu_max,
            freq: grid.cu_freq_max,
        }
    }

    /// Number of active compute units.
    #[inline]
    pub fn cu_count(self) -> u32 {
        self.cu_count
    }

    /// Compute clock frequency.
    #[inline]
    pub fn freq(self) -> MegaHertz {
        self.freq
    }

    /// Peak single-precision throughput in GFLOP/s on the HD7970, counting
    /// fused multiply-accumulate as two operations:
    /// `CUs × 4 SIMDs × 16 lanes × 2`.
    ///
    /// At 32 CUs and 1 GHz this is the paper's headline 4096 GFLOPS.
    pub fn peak_gflops(self) -> f64 {
        self.peak_gflops_on(&GridSpec::HD7970)
    }

    /// Peak single-precision throughput in GFLOP/s on a device grid:
    /// `CUs × flops-per-CU-clock × GHz`.
    pub fn peak_gflops_on(self, grid: &GridSpec) -> f64 {
        f64::from(self.cu_count) * grid.flops_per_cu_clock * self.freq.as_ghz()
    }

    /// All valid CU counts on the HD7970 grid, ascending.
    pub fn cu_levels() -> Vec<u32> {
        GridSpec::HD7970.cu_levels()
    }

    /// All valid compute frequencies on the HD7970 grid, ascending.
    pub fn freq_levels() -> Vec<MegaHertz> {
        GridSpec::HD7970.cu_freq_levels()
    }
}

impl Default for ComputeConfig {
    /// Defaults to the maximum (boost) configuration, matching the paper's
    /// observation that the stock power manager always runs at boost.
    fn default() -> Self {
        Self::max_hd7970()
    }
}

impl fmt::Display for ComputeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} CUs @ {}", self.cu_count, self.freq)
    }
}

/// Memory-side configuration: the memory bus frequency.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct MemoryConfig {
    bus_freq: MegaHertz,
}

impl MemoryConfig {
    /// Creates a memory configuration on the HD7970 grid, validating range
    /// and step grid.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `bus_freq` is outside 475..=1375 MHz or not
    /// on the 150 MHz grid.
    pub fn new(bus_freq: MegaHertz) -> Result<Self, ConfigError> {
        Self::new_on(&GridSpec::HD7970, bus_freq)
    }

    /// Creates a memory configuration on an arbitrary device grid.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `bus_freq` is outside the grid's range or
    /// off its step lattice.
    pub fn new_on(grid: &GridSpec, bus_freq: MegaHertz) -> Result<Self, ConfigError> {
        let v = bus_freq.value();
        if bus_freq < grid.mem_freq_min
            || bus_freq > grid.mem_freq_max
            || !(v - grid.mem_freq_min.value()).is_multiple_of(grid.mem_freq_step)
        {
            return Err(ConfigError::new("memory bus frequency (MHz)", v));
        }
        Ok(Self { bus_freq })
    }

    /// Minimum memory configuration (475 MHz bus, ~90 GB/s).
    pub fn min_hd7970() -> Self {
        Self::min_on(&GridSpec::HD7970)
    }

    /// Maximum memory configuration (1375 MHz bus, 264 GB/s).
    pub fn max_hd7970() -> Self {
        Self::max_on(&GridSpec::HD7970)
    }

    /// Minimum memory configuration of a device grid.
    pub fn min_on(grid: &GridSpec) -> Self {
        Self {
            bus_freq: grid.mem_freq_min,
        }
    }

    /// Maximum memory configuration of a device grid.
    pub fn max_on(grid: &GridSpec) -> Self {
        Self {
            bus_freq: grid.mem_freq_max,
        }
    }

    /// Memory bus clock frequency.
    #[inline]
    pub fn bus_freq(self) -> MegaHertz {
        self.bus_freq
    }

    /// Peak DRAM bandwidth delivered at this bus frequency on the HD7970
    /// (Equation 2 of the paper): `freq × bus-width × transfer-rate`.
    ///
    /// At 1375 MHz: `1375e6 × 48 B × 4 = 264 GB/s`.
    pub fn peak_bandwidth(self) -> GigabytesPerSec {
        self.peak_bandwidth_on(&GridSpec::HD7970)
    }

    /// Peak DRAM bandwidth delivered at this bus frequency on a device grid.
    pub fn peak_bandwidth_on(self, grid: &GridSpec) -> GigabytesPerSec {
        GigabytesPerSec::from_bytes_per_sec(self.bus_freq.as_hz() * grid.bytes_per_clock())
    }

    /// All valid memory bus frequencies on the HD7970 grid, ascending.
    pub fn freq_levels() -> Vec<MegaHertz> {
        GridSpec::HD7970.mem_freq_levels()
    }
}

impl Default for MemoryConfig {
    /// Defaults to the maximum memory frequency (the stock baseline).
    fn default() -> Self {
        Self::max_hd7970()
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display is an HD7970 convenience: bandwidth is computed on the
        // HD7970 bus. Device-aware reporting formats bandwidth through
        // `peak_bandwidth_on` with the session's grid.
        write!(f, "mem {} ({:.0} GB/s)", self.bus_freq, self.peak_bandwidth().value())
    }
}

/// A full hardware operating point: compute plus memory configuration.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct HwConfig {
    /// Compute-side settings.
    pub compute: ComputeConfig,
    /// Memory-side settings.
    pub memory: MemoryConfig,
}

impl HwConfig {
    /// Pairs a compute and a memory configuration.
    pub fn new(compute: ComputeConfig, memory: MemoryConfig) -> Self {
        Self { compute, memory }
    }

    /// The minimum hardware configuration (4 CUs, 300 MHz, 90 GB/s): the
    /// normalization baseline of Figures 3–5.
    pub fn min_hd7970() -> Self {
        Self::min_on(&GridSpec::HD7970)
    }

    /// The maximum hardware configuration (32 CUs, 1 GHz, 264 GB/s): the
    /// stock PowerTune baseline under thermal headroom.
    pub fn max_hd7970() -> Self {
        Self::max_on(&GridSpec::HD7970)
    }

    /// The minimum hardware configuration of a device grid (the grid's
    /// normalization baseline).
    pub fn min_on(grid: &GridSpec) -> Self {
        Self::new(ComputeConfig::min_on(grid), MemoryConfig::min_on(grid))
    }

    /// The maximum hardware configuration of a device grid (the stock
    /// boost-everything baseline).
    pub fn max_on(grid: &GridSpec) -> Self {
        Self::new(ComputeConfig::max_on(grid), MemoryConfig::max_on(grid))
    }

    /// The ops/byte the *hardware* can deliver at this operating point on
    /// the HD7970: peak compute throughput over peak memory bandwidth. The
    /// paper plots performance against this quantity in Figure 3.
    pub fn hw_ops_per_byte(self) -> f64 {
        self.hw_ops_per_byte_on(&GridSpec::HD7970)
    }

    /// Hardware ops/byte on the HD7970 normalized to the minimum
    /// configuration (the X axis of Figure 3).
    pub fn hw_ops_per_byte_normalized(self) -> f64 {
        self.hw_ops_per_byte_normalized_on(&GridSpec::HD7970)
    }

    /// The ops/byte the hardware can deliver at this operating point on a
    /// device grid.
    pub fn hw_ops_per_byte_on(self, grid: &GridSpec) -> f64 {
        self.compute.peak_gflops_on(grid) / self.memory.peak_bandwidth_on(grid).value()
    }

    /// Hardware ops/byte normalized to the grid's minimum configuration.
    pub fn hw_ops_per_byte_normalized_on(self, grid: &GridSpec) -> f64 {
        self.hw_ops_per_byte_on(grid) / Self::min_on(grid).hw_ops_per_byte_on(grid)
    }

    /// The level (grid index and normalized fraction) of one tunable on the
    /// HD7970 grid.
    pub fn level(self, tunable: Tunable) -> TunableLevel {
        self.level_on(&GridSpec::HD7970, tunable)
    }

    /// The level of one tunable on a device grid.
    pub fn level_on(self, grid: &GridSpec, tunable: Tunable) -> TunableLevel {
        let (index, count) = match tunable {
            Tunable::CuCount => (
                ((self.compute.cu_count - grid.cu_min) / grid.cu_step) as usize,
                grid.cu_level_count(),
            ),
            Tunable::CuFreq => (
                ((self.compute.freq.value() - grid.cu_freq_min.value()) / grid.cu_freq_step)
                    as usize,
                grid.cu_freq_level_count(),
            ),
            Tunable::MemFreq => (
                ((self.memory.bus_freq.value() - grid.mem_freq_min.value()) / grid.mem_freq_step)
                    as usize,
                grid.mem_freq_level_count(),
            ),
        };
        TunableLevel {
            index,
            count,
            fraction: index as f64 / (count - 1) as f64,
        }
    }

    /// Steps one tunable up by one HD7970 grid step. Returns `None` at the
    /// maximum.
    ///
    /// This is the "increment state" operation of the fine-grain tuning loop
    /// (Algorithm 1): core step = 100 MHz, memory step = 150 MHz (~30 GB/s),
    /// CU step = 4.
    pub fn step_up(self, tunable: Tunable) -> Option<Self> {
        self.step_up_on(&GridSpec::HD7970, tunable)
    }

    /// Steps one tunable up by one step of a device grid. Returns `None` at
    /// the maximum.
    pub fn step_up_on(self, grid: &GridSpec, tunable: Tunable) -> Option<Self> {
        let mut next = self;
        match tunable {
            Tunable::CuCount => {
                if self.compute.cu_count >= grid.cu_max {
                    return None;
                }
                next.compute.cu_count += grid.cu_step;
            }
            Tunable::CuFreq => {
                if self.compute.freq >= grid.cu_freq_max {
                    return None;
                }
                next.compute.freq = MegaHertz(self.compute.freq.value() + grid.cu_freq_step);
            }
            Tunable::MemFreq => {
                if self.memory.bus_freq >= grid.mem_freq_max {
                    return None;
                }
                next.memory.bus_freq = MegaHertz(self.memory.bus_freq.value() + grid.mem_freq_step);
            }
        }
        Some(next)
    }

    /// Steps one tunable down by one HD7970 grid step. Returns `None` at the
    /// minimum.
    ///
    /// This is the "decrement state" operation of the fine-grain tuning loop.
    pub fn step_down(self, tunable: Tunable) -> Option<Self> {
        self.step_down_on(&GridSpec::HD7970, tunable)
    }

    /// Steps one tunable down by one step of a device grid. Returns `None`
    /// at the minimum.
    pub fn step_down_on(self, grid: &GridSpec, tunable: Tunable) -> Option<Self> {
        let mut next = self;
        match tunable {
            Tunable::CuCount => {
                if self.compute.cu_count <= grid.cu_min {
                    return None;
                }
                next.compute.cu_count -= grid.cu_step;
            }
            Tunable::CuFreq => {
                if self.compute.freq <= grid.cu_freq_min {
                    return None;
                }
                next.compute.freq = MegaHertz(self.compute.freq.value() - grid.cu_freq_step);
            }
            Tunable::MemFreq => {
                if self.memory.bus_freq <= grid.mem_freq_min {
                    return None;
                }
                next.memory.bus_freq = MegaHertz(self.memory.bus_freq.value() - grid.mem_freq_step);
            }
        }
        Some(next)
    }

    /// Sets one tunable to the HD7970 grid level nearest `fraction`
    /// (0.0 = minimum, 1.0 = maximum). Used by coarse-grain tuning to
    /// translate a sensitivity bin into a proportional tunable value.
    pub fn with_fraction(self, tunable: Tunable, fraction: f64) -> Self {
        self.with_fraction_on(&GridSpec::HD7970, tunable, fraction)
    }

    /// Sets one tunable to the device-grid level nearest `fraction`.
    pub fn with_fraction_on(self, grid: &GridSpec, tunable: Tunable, fraction: f64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut next = self;
        match tunable {
            Tunable::CuCount => {
                let levels = grid.cu_levels();
                let i = (fraction * (levels.len() - 1) as f64).round() as usize;
                next.compute.cu_count = levels[i];
            }
            Tunable::CuFreq => {
                let levels = grid.cu_freq_levels();
                let i = (fraction * (levels.len() - 1) as f64).round() as usize;
                next.compute.freq = levels[i];
            }
            Tunable::MemFreq => {
                let levels = grid.mem_freq_levels();
                let i = (fraction * (levels.len() - 1) as f64).round() as usize;
                next.memory.bus_freq = levels[i];
            }
        }
        next
    }

    /// The value of one tunable as a raw number (CU count, or MHz).
    pub fn raw_value(self, tunable: Tunable) -> u32 {
        match tunable {
            Tunable::CuCount => self.compute.cu_count,
            Tunable::CuFreq => self.compute.freq.value(),
            Tunable::MemFreq => self.memory.bus_freq.value(),
        }
    }
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {}", self.compute, self.memory)
    }
}

/// The full design space of hardware operating points (Section 3.1). For the
/// HD7970: 8 CU counts × 8 compute frequencies × 7 memory frequencies = 448
/// points; other catalog devices carry their own grids.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    grid: GridSpec,
    cu_levels: Vec<u32>,
    cu_freqs: Vec<MegaHertz>,
    mem_freqs: Vec<MegaHertz>,
}

impl ConfigSpace {
    /// The HD7970 design space the paper sweeps.
    pub fn hd7970() -> Self {
        Self::for_grid(&GridSpec::HD7970)
    }

    /// The design space of an arbitrary device grid.
    pub fn for_grid(grid: &GridSpec) -> Self {
        Self {
            grid: *grid,
            cu_levels: grid.cu_levels(),
            cu_freqs: grid.cu_freq_levels(),
            mem_freqs: grid.mem_freq_levels(),
        }
    }

    /// The grid this space enumerates.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of operating points in the space.
    pub fn len(&self) -> usize {
        self.cu_levels.len() * self.cu_freqs.len() * self.mem_freqs.len()
    }

    /// Whether the space is empty (never true for catalog spaces).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `cfg` lies in this space.
    pub fn contains(&self, cfg: HwConfig) -> bool {
        self.cu_levels.contains(&cfg.compute.cu_count())
            && self.cu_freqs.contains(&cfg.compute.freq())
            && self.mem_freqs.contains(&cfg.memory.bus_freq())
    }

    /// Iterates over every operating point, memory-major then CU count then
    /// frequency (the order is stable and documented so experiment output is
    /// reproducible).
    pub fn iter(&self) -> impl Iterator<Item = HwConfig> + '_ {
        self.mem_freqs.iter().flat_map(move |&m| {
            self.cu_levels.iter().flat_map(move |&c| {
                self.cu_freqs.iter().map(move |&f| {
                    HwConfig::new(
                        ComputeConfig::new_on(&self.grid, c, f).expect("grid values are valid"),
                        MemoryConfig::new_on(&self.grid, m).expect("grid values are valid"),
                    )
                })
            })
        })
    }

    /// All valid CU counts.
    pub fn cu_levels(&self) -> &[u32] {
        &self.cu_levels
    }

    /// All valid compute frequencies.
    pub fn cu_freqs(&self) -> &[MegaHertz] {
        &self.cu_freqs
    }

    /// All valid memory bus frequencies.
    pub fn mem_freqs(&self) -> &[MegaHertz] {
        &self.mem_freqs
    }
}

impl Default for ConfigSpace {
    fn default() -> Self {
        Self::hd7970()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_448_points() {
        let space = ConfigSpace::hd7970();
        assert_eq!(space.len(), 448);
        assert_eq!(space.iter().count(), 448);
        assert!(!space.is_empty());
    }

    #[test]
    fn compute_config_validation() {
        assert!(ComputeConfig::new(4, MegaHertz(300)).is_ok());
        assert!(ComputeConfig::new(32, MegaHertz(1000)).is_ok());
        assert!(ComputeConfig::new(0, MegaHertz(300)).is_err());
        assert!(ComputeConfig::new(5, MegaHertz(300)).is_err());
        assert!(ComputeConfig::new(36, MegaHertz(300)).is_err());
        assert!(ComputeConfig::new(4, MegaHertz(250)).is_err());
        assert!(ComputeConfig::new(4, MegaHertz(1100)).is_err());
    }

    #[test]
    fn memory_config_validation() {
        assert!(MemoryConfig::new(MegaHertz(475)).is_ok());
        assert!(MemoryConfig::new(MegaHertz(1375)).is_ok());
        assert!(MemoryConfig::new(MegaHertz(500)).is_err());
        assert!(MemoryConfig::new(MegaHertz(400)).is_err());
        assert!(MemoryConfig::new(MegaHertz(1500)).is_err());
    }

    #[test]
    fn config_error_displays() {
        let err = ComputeConfig::new(5, MegaHertz(300)).unwrap_err();
        assert!(err.to_string().contains("CU count"));
    }

    #[test]
    fn peak_gflops_matches_paper() {
        // 32 CUs × 4 SIMD × 16 lanes × 2 ops (FMAC) × 1 GHz = 4096 GFLOPS.
        assert!((ComputeConfig::max_hd7970().peak_gflops() - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn peak_bandwidth_matches_paper() {
        let max = MemoryConfig::max_hd7970().peak_bandwidth();
        assert!((max.value() - 264.0).abs() < 0.1);
        let min = MemoryConfig::min_hd7970().peak_bandwidth();
        assert!((min.value() - 91.2).abs() < 0.1);
    }

    #[test]
    fn bandwidth_steps_are_about_30gbs() {
        let levels = MemoryConfig::freq_levels();
        assert_eq!(levels.len(), 7);
        for w in levels.windows(2) {
            let lo = MemoryConfig::new(w[0]).unwrap().peak_bandwidth().value();
            let hi = MemoryConfig::new(w[1]).unwrap().peak_bandwidth().value();
            assert!((hi - lo - 28.8).abs() < 0.1); // "steps of 30GB/s" (≈28.8)
        }
    }

    #[test]
    fn hw_ops_per_byte_at_extremes() {
        let max = HwConfig::max_hd7970();
        // 4096 GFLOPS / 264 GB/s ≈ 15.5 ops/byte.
        assert!((max.hw_ops_per_byte() - 15.51).abs() < 0.05);
        let min = HwConfig::min_hd7970();
        // 4 CUs × 128 ops × 0.3 GHz = 153.6 GFLOPS / 91.2 GB/s ≈ 1.68.
        assert!((min.hw_ops_per_byte() - 1.684).abs() < 0.01);
        assert!((min.hw_ops_per_byte_normalized() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stepping_up_and_down_is_inverse() {
        let cfg = HwConfig::new(
            ComputeConfig::new(16, MegaHertz(600)).unwrap(),
            MemoryConfig::new(MegaHertz(925)).unwrap(),
        );
        for t in Tunable::ALL {
            let up = cfg.step_up(t).unwrap();
            assert_eq!(up.step_down(t).unwrap(), cfg);
        }
    }

    #[test]
    fn stepping_saturates_at_bounds() {
        let max = HwConfig::max_hd7970();
        let min = HwConfig::min_hd7970();
        for t in Tunable::ALL {
            assert!(max.step_up(t).is_none());
            assert!(min.step_down(t).is_none());
            assert!(max.step_down(t).is_some());
            assert!(min.step_up(t).is_some());
        }
    }

    #[test]
    fn levels_and_fractions() {
        let min = HwConfig::min_hd7970();
        let max = HwConfig::max_hd7970();
        for t in Tunable::ALL {
            assert_eq!(min.level(t).index, 0);
            assert_eq!(min.level(t).fraction, 0.0);
            assert_eq!(max.level(t).fraction, 1.0);
            assert_eq!(max.level(t).index, max.level(t).count - 1);
        }
        assert_eq!(max.level(Tunable::CuCount).count, 8);
        assert_eq!(max.level(Tunable::CuFreq).count, 8);
        assert_eq!(max.level(Tunable::MemFreq).count, 7);
    }

    #[test]
    fn with_fraction_hits_grid_extremes() {
        let cfg = HwConfig::min_hd7970();
        let high = cfg
            .with_fraction(Tunable::CuCount, 1.0)
            .with_fraction(Tunable::CuFreq, 1.0)
            .with_fraction(Tunable::MemFreq, 1.0);
        assert_eq!(high, HwConfig::max_hd7970());
        let low = HwConfig::max_hd7970()
            .with_fraction(Tunable::CuCount, 0.0)
            .with_fraction(Tunable::CuFreq, 0.0)
            .with_fraction(Tunable::MemFreq, 0.0);
        assert_eq!(low, HwConfig::min_hd7970());
    }

    #[test]
    fn with_fraction_rounds_to_nearest_level() {
        let cfg = HwConfig::min_hd7970().with_fraction(Tunable::CuCount, 0.5);
        // Levels are 4..=32; 0.5 of 7 steps rounds to index 4 → 20 CUs.
        assert_eq!(cfg.compute.cu_count(), 20);
    }

    #[test]
    fn raw_values() {
        let max = HwConfig::max_hd7970();
        assert_eq!(max.raw_value(Tunable::CuCount), 32);
        assert_eq!(max.raw_value(Tunable::CuFreq), 1000);
        assert_eq!(max.raw_value(Tunable::MemFreq), 1375);
    }

    #[test]
    fn space_contains_every_iterated_point() {
        let space = ConfigSpace::hd7970();
        for cfg in space.iter() {
            assert!(space.contains(cfg));
        }
    }

    #[test]
    fn display_formats() {
        let max = HwConfig::max_hd7970();
        let text = max.to_string();
        assert!(text.contains("32 CUs"));
        assert!(text.contains("1000 MHz"));
        assert!(text.contains("264 GB/s"));
        assert_eq!(Tunable::CuCount.to_string(), "#CUs");
    }

    #[test]
    fn legacy_helpers_delegate_to_the_hd7970_grid() {
        let grid = GridSpec::HD7970;
        assert_eq!(HwConfig::min_on(&grid), HwConfig::min_hd7970());
        assert_eq!(HwConfig::max_on(&grid), HwConfig::max_hd7970());
        let cfg = HwConfig::new(
            ComputeConfig::new(16, MegaHertz(600)).unwrap(),
            MemoryConfig::new(MegaHertz(925)).unwrap(),
        );
        for t in Tunable::ALL {
            assert_eq!(cfg.step_up(t), cfg.step_up_on(&grid, t));
            assert_eq!(cfg.step_down(t), cfg.step_down_on(&grid, t));
            assert_eq!(cfg.level(t), cfg.level_on(&grid, t));
            assert_eq!(cfg.with_fraction(t, 0.37), cfg.with_fraction_on(&grid, t, 0.37));
        }
        assert_eq!(cfg.hw_ops_per_byte(), cfg.hw_ops_per_byte_on(&grid));
        assert_eq!(
            cfg.compute.peak_gflops(),
            cfg.compute.peak_gflops_on(&grid)
        );
        assert_eq!(
            cfg.memory.peak_bandwidth(),
            cfg.memory.peak_bandwidth_on(&grid)
        );
    }

    #[test]
    fn foreign_grid_space_validates_its_own_lattice() {
        let grid = GridSpec {
            cu_min: 8,
            cu_max: 80,
            cu_step: 8,
            cu_freq_min: MegaHertz(600),
            cu_freq_max: MegaHertz(1500),
            cu_freq_step: 100,
            mem_freq_min: MegaHertz(500),
            mem_freq_max: MegaHertz(875),
            mem_freq_step: 75,
            mem_bus_width_bits: 4096,
            mem_transfer_rate: 2.0,
            flops_per_cu_clock: 128.0,
        };
        assert!(ComputeConfig::new_on(&grid, 80, MegaHertz(1500)).is_ok());
        assert!(ComputeConfig::new_on(&grid, 32, MegaHertz(1000)).is_ok());
        assert!(ComputeConfig::new_on(&grid, 4, MegaHertz(1000)).is_err());
        assert!(ComputeConfig::new_on(&grid, 80, MegaHertz(1550)).is_err());
        assert!(MemoryConfig::new_on(&grid, MegaHertz(875)).is_ok());
        assert!(MemoryConfig::new_on(&grid, MegaHertz(1375)).is_err());
        let space = ConfigSpace::for_grid(&grid);
        assert_eq!(space.len(), 10 * 10 * 6);
        for cfg in space.iter() {
            assert!(space.contains(cfg));
            for t in Tunable::ALL {
                let level = cfg.level_on(&grid, t);
                assert!(level.index < level.count);
                if let Some(up) = cfg.step_up_on(&grid, t) {
                    assert_eq!(up.step_down_on(&grid, t).unwrap(), cfg);
                    assert!(space.contains(up));
                }
            }
        }
        // Stepping respects the foreign bounds, not the HD7970 ones.
        let max = HwConfig::max_on(&grid);
        for t in Tunable::ALL {
            assert!(max.step_up_on(&grid, t).is_none());
        }
    }
}
