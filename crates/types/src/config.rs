//! Hardware configuration space of the managed platform.
//!
//! The paper (Section 3.1) manages three tunables on an AMD Radeon HD7970:
//!
//! * **active compute-unit count** — 4 to 32 in steps of 4,
//! * **compute-unit frequency** — 300 MHz to 1 GHz in steps of 100 MHz,
//! * **memory bus frequency** — 475 MHz to 1375 MHz in steps of 150 MHz
//!   (equivalently 90 GB/s to 264 GB/s of bandwidth in steps of ~30 GB/s).
//!
//! A ([`ComputeConfig`], [`MemoryConfig`]) pair is an [`HwConfig`]; the full
//! cross product is [`ConfigSpace`] with 8 × 8 × 7 = 448 points — the
//! "approximately 450" combinations the paper sweeps.

use crate::units::{GigabytesPerSec, MegaHertz};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Minimum number of active compute units.
pub const CU_MIN: u32 = 4;
/// Maximum number of compute units on the HD7970.
pub const CU_MAX: u32 = 32;
/// Granularity of compute-unit power gating.
pub const CU_STEP: u32 = 4;

/// Minimum compute (shader) clock.
pub const CU_FREQ_MIN: MegaHertz = MegaHertz(300);
/// Maximum compute clock (the 1 GHz boost state).
pub const CU_FREQ_MAX: MegaHertz = MegaHertz(1000);
/// Compute clock granularity.
pub const CU_FREQ_STEP: u32 = 100;

/// Minimum memory bus clock (90 GB/s of bandwidth).
pub const MEM_FREQ_MIN: MegaHertz = MegaHertz(475);
/// Maximum memory bus clock (264 GB/s of bandwidth).
pub const MEM_FREQ_MAX: MegaHertz = MegaHertz(1375);
/// Memory bus clock granularity (~30 GB/s of bandwidth).
pub const MEM_FREQ_STEP: u32 = 150;

/// GDDR5 moves four data words per bus clock.
pub const GDDR5_TRANSFER_RATE: f64 = 4.0;
/// Six 64-bit dual-channel controllers form a 384-bit interface.
pub const MEM_BUS_WIDTH_BITS: u32 = 384;
/// Number of memory channels (each controller drives one 64-bit channel pair).
pub const MEM_CHANNELS: u32 = 6;

/// Error returned when constructing a configuration outside the platform's
/// supported range or off its step grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    what: &'static str,
    got: u32,
}

impl ConfigError {
    fn new(what: &'static str, got: u32) -> Self {
        Self { what, got }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.what, self.got)
    }
}

impl Error for ConfigError {}

/// One of the three hardware tunables Harmonia manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tunable {
    /// Number of active compute units (inactive ones are power gated).
    CuCount,
    /// Compute-unit (shader) clock frequency.
    CuFreq,
    /// Memory bus clock frequency (sets memory bandwidth).
    MemFreq,
}

impl Tunable {
    /// All tunables, in the order the paper lists them.
    pub const ALL: [Tunable; 3] = [Tunable::CuCount, Tunable::CuFreq, Tunable::MemFreq];
}

impl fmt::Display for Tunable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tunable::CuCount => write!(f, "#CUs"),
            Tunable::CuFreq => write!(f, "CU freq"),
            Tunable::MemFreq => write!(f, "Mem freq"),
        }
    }
}

/// A discrete level of one tunable: its index on the step grid and the value
/// normalized to `[0, 1]` across the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunableLevel {
    /// 0-based index on the tunable's step grid.
    pub index: usize,
    /// Number of levels on the grid.
    pub count: usize,
    /// `index / (count - 1)`, i.e. 0.0 at minimum and 1.0 at maximum.
    pub fraction: f64,
}

/// Compute-side configuration: active CU count and CU frequency.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct ComputeConfig {
    cu_count: u32,
    freq: MegaHertz,
}

impl ComputeConfig {
    /// Creates a compute configuration, validating range and step grid.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cu_count` is outside 4..=32 or not a
    /// multiple of 4, or if `freq` is outside 300..=1000 MHz or not a
    /// multiple of 100 MHz.
    pub fn new(cu_count: u32, freq: MegaHertz) -> Result<Self, ConfigError> {
        if !(CU_MIN..=CU_MAX).contains(&cu_count) || !cu_count.is_multiple_of(CU_STEP) {
            return Err(ConfigError::new("CU count", cu_count));
        }
        if freq < CU_FREQ_MIN || freq > CU_FREQ_MAX || !freq.value().is_multiple_of(CU_FREQ_STEP) {
            return Err(ConfigError::new("CU frequency (MHz)", freq.value()));
        }
        Ok(Self { cu_count, freq })
    }

    /// Minimum compute configuration of the HD7970 (4 CUs at 300 MHz) — the
    /// normalization point of the paper's Figures 3–5.
    pub fn min_hd7970() -> Self {
        Self {
            cu_count: CU_MIN,
            freq: CU_FREQ_MIN,
        }
    }

    /// Maximum compute configuration (32 CUs at the 1 GHz boost clock).
    pub fn max_hd7970() -> Self {
        Self {
            cu_count: CU_MAX,
            freq: CU_FREQ_MAX,
        }
    }

    /// Number of active compute units.
    #[inline]
    pub fn cu_count(self) -> u32 {
        self.cu_count
    }

    /// Compute clock frequency.
    #[inline]
    pub fn freq(self) -> MegaHertz {
        self.freq
    }

    /// Peak single-precision throughput in GFLOP/s, counting fused
    /// multiply-accumulate as two operations: `CUs × 4 SIMDs × 16 lanes × 2`.
    ///
    /// At 32 CUs and 1 GHz this is the paper's headline 4096 GFLOPS.
    pub fn peak_gflops(self) -> f64 {
        f64::from(self.cu_count) * 4.0 * 16.0 * 2.0 * self.freq.as_ghz()
    }

    /// All valid CU counts, ascending.
    pub fn cu_levels() -> Vec<u32> {
        (CU_MIN..=CU_MAX).step_by(CU_STEP as usize).collect()
    }

    /// All valid compute frequencies, ascending.
    pub fn freq_levels() -> Vec<MegaHertz> {
        (CU_FREQ_MIN.value()..=CU_FREQ_MAX.value())
            .step_by(CU_FREQ_STEP as usize)
            .map(MegaHertz)
            .collect()
    }
}

impl Default for ComputeConfig {
    /// Defaults to the maximum (boost) configuration, matching the paper's
    /// observation that the stock power manager always runs at boost.
    fn default() -> Self {
        Self::max_hd7970()
    }
}

impl fmt::Display for ComputeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} CUs @ {}", self.cu_count, self.freq)
    }
}

/// Memory-side configuration: the memory bus frequency.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct MemoryConfig {
    bus_freq: MegaHertz,
}

impl MemoryConfig {
    /// Creates a memory configuration, validating range and step grid.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `bus_freq` is outside 475..=1375 MHz or not
    /// on the 150 MHz grid.
    pub fn new(bus_freq: MegaHertz) -> Result<Self, ConfigError> {
        let v = bus_freq.value();
        if bus_freq < MEM_FREQ_MIN
            || bus_freq > MEM_FREQ_MAX
            || !(v - MEM_FREQ_MIN.value()).is_multiple_of(MEM_FREQ_STEP)
        {
            return Err(ConfigError::new("memory bus frequency (MHz)", v));
        }
        Ok(Self { bus_freq })
    }

    /// Minimum memory configuration (475 MHz bus, ~90 GB/s).
    pub fn min_hd7970() -> Self {
        Self {
            bus_freq: MEM_FREQ_MIN,
        }
    }

    /// Maximum memory configuration (1375 MHz bus, 264 GB/s).
    pub fn max_hd7970() -> Self {
        Self {
            bus_freq: MEM_FREQ_MAX,
        }
    }

    /// Memory bus clock frequency.
    #[inline]
    pub fn bus_freq(self) -> MegaHertz {
        self.bus_freq
    }

    /// Peak DRAM bandwidth delivered at this bus frequency (Equation 2 of the
    /// paper): `freq × bus-width × transfer-rate`.
    ///
    /// At 1375 MHz: `1375e6 × 48 B × 4 = 264 GB/s`.
    pub fn peak_bandwidth(self) -> GigabytesPerSec {
        let bytes_per_clock = f64::from(MEM_BUS_WIDTH_BITS / 8) * GDDR5_TRANSFER_RATE;
        GigabytesPerSec::from_bytes_per_sec(self.bus_freq.as_hz() * bytes_per_clock)
    }

    /// All valid memory bus frequencies, ascending.
    pub fn freq_levels() -> Vec<MegaHertz> {
        (MEM_FREQ_MIN.value()..=MEM_FREQ_MAX.value())
            .step_by(MEM_FREQ_STEP as usize)
            .map(MegaHertz)
            .collect()
    }
}

impl Default for MemoryConfig {
    /// Defaults to the maximum memory frequency (the stock baseline).
    fn default() -> Self {
        Self::max_hd7970()
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem {} ({:.0} GB/s)", self.bus_freq, self.peak_bandwidth().value())
    }
}

/// A full hardware operating point: compute plus memory configuration.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct HwConfig {
    /// Compute-side settings.
    pub compute: ComputeConfig,
    /// Memory-side settings.
    pub memory: MemoryConfig,
}

impl HwConfig {
    /// Pairs a compute and a memory configuration.
    pub fn new(compute: ComputeConfig, memory: MemoryConfig) -> Self {
        Self { compute, memory }
    }

    /// The minimum hardware configuration (4 CUs, 300 MHz, 90 GB/s): the
    /// normalization baseline of Figures 3–5.
    pub fn min_hd7970() -> Self {
        Self::new(ComputeConfig::min_hd7970(), MemoryConfig::min_hd7970())
    }

    /// The maximum hardware configuration (32 CUs, 1 GHz, 264 GB/s): the
    /// stock PowerTune baseline under thermal headroom.
    pub fn max_hd7970() -> Self {
        Self::new(ComputeConfig::max_hd7970(), MemoryConfig::max_hd7970())
    }

    /// The ops/byte the *hardware* can deliver at this operating point:
    /// peak compute throughput over peak memory bandwidth. The paper plots
    /// performance against this quantity in Figure 3.
    pub fn hw_ops_per_byte(self) -> f64 {
        self.compute.peak_gflops() / self.memory.peak_bandwidth().value()
    }

    /// Hardware ops/byte normalized to the minimum configuration (the
    /// X axis of Figure 3).
    pub fn hw_ops_per_byte_normalized(self) -> f64 {
        self.hw_ops_per_byte() / Self::min_hd7970().hw_ops_per_byte()
    }

    /// The level (grid index and normalized fraction) of one tunable.
    pub fn level(self, tunable: Tunable) -> TunableLevel {
        let (index, count) = match tunable {
            Tunable::CuCount => (
                ((self.compute.cu_count - CU_MIN) / CU_STEP) as usize,
                ((CU_MAX - CU_MIN) / CU_STEP + 1) as usize,
            ),
            Tunable::CuFreq => (
                ((self.compute.freq.value() - CU_FREQ_MIN.value()) / CU_FREQ_STEP) as usize,
                ((CU_FREQ_MAX.value() - CU_FREQ_MIN.value()) / CU_FREQ_STEP + 1) as usize,
            ),
            Tunable::MemFreq => (
                ((self.memory.bus_freq.value() - MEM_FREQ_MIN.value()) / MEM_FREQ_STEP) as usize,
                ((MEM_FREQ_MAX.value() - MEM_FREQ_MIN.value()) / MEM_FREQ_STEP + 1) as usize,
            ),
        };
        TunableLevel {
            index,
            count,
            fraction: index as f64 / (count - 1) as f64,
        }
    }

    /// Steps one tunable up by one grid step. Returns `None` at the maximum.
    ///
    /// This is the "increment state" operation of the fine-grain tuning loop
    /// (Algorithm 1): core step = 100 MHz, memory step = 150 MHz (~30 GB/s),
    /// CU step = 4.
    pub fn step_up(self, tunable: Tunable) -> Option<Self> {
        let mut next = self;
        match tunable {
            Tunable::CuCount => {
                if self.compute.cu_count >= CU_MAX {
                    return None;
                }
                next.compute.cu_count += CU_STEP;
            }
            Tunable::CuFreq => {
                if self.compute.freq >= CU_FREQ_MAX {
                    return None;
                }
                next.compute.freq = MegaHertz(self.compute.freq.value() + CU_FREQ_STEP);
            }
            Tunable::MemFreq => {
                if self.memory.bus_freq >= MEM_FREQ_MAX {
                    return None;
                }
                next.memory.bus_freq = MegaHertz(self.memory.bus_freq.value() + MEM_FREQ_STEP);
            }
        }
        Some(next)
    }

    /// Steps one tunable down by one grid step. Returns `None` at the minimum.
    ///
    /// This is the "decrement state" operation of the fine-grain tuning loop.
    pub fn step_down(self, tunable: Tunable) -> Option<Self> {
        let mut next = self;
        match tunable {
            Tunable::CuCount => {
                if self.compute.cu_count <= CU_MIN {
                    return None;
                }
                next.compute.cu_count -= CU_STEP;
            }
            Tunable::CuFreq => {
                if self.compute.freq <= CU_FREQ_MIN {
                    return None;
                }
                next.compute.freq = MegaHertz(self.compute.freq.value() - CU_FREQ_STEP);
            }
            Tunable::MemFreq => {
                if self.memory.bus_freq <= MEM_FREQ_MIN {
                    return None;
                }
                next.memory.bus_freq = MegaHertz(self.memory.bus_freq.value() - MEM_FREQ_STEP);
            }
        }
        Some(next)
    }

    /// Sets one tunable to the grid level nearest `fraction` (0.0 = minimum,
    /// 1.0 = maximum). Used by coarse-grain tuning to translate a sensitivity
    /// bin into a proportional tunable value.
    pub fn with_fraction(self, tunable: Tunable, fraction: f64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut next = self;
        match tunable {
            Tunable::CuCount => {
                let levels = ComputeConfig::cu_levels();
                let i = (fraction * (levels.len() - 1) as f64).round() as usize;
                next.compute.cu_count = levels[i];
            }
            Tunable::CuFreq => {
                let levels = ComputeConfig::freq_levels();
                let i = (fraction * (levels.len() - 1) as f64).round() as usize;
                next.compute.freq = levels[i];
            }
            Tunable::MemFreq => {
                let levels = MemoryConfig::freq_levels();
                let i = (fraction * (levels.len() - 1) as f64).round() as usize;
                next.memory.bus_freq = levels[i];
            }
        }
        next
    }

    /// The value of one tunable as a raw number (CU count, or MHz).
    pub fn raw_value(self, tunable: Tunable) -> u32 {
        match tunable {
            Tunable::CuCount => self.compute.cu_count,
            Tunable::CuFreq => self.compute.freq.value(),
            Tunable::MemFreq => self.memory.bus_freq.value(),
        }
    }
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {}", self.compute, self.memory)
    }
}

/// The full design space of hardware operating points (Section 3.1):
/// 8 CU counts × 8 compute frequencies × 7 memory frequencies = 448 points.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    cu_levels: Vec<u32>,
    cu_freqs: Vec<MegaHertz>,
    mem_freqs: Vec<MegaHertz>,
}

impl ConfigSpace {
    /// The HD7970 design space the paper sweeps.
    pub fn hd7970() -> Self {
        Self {
            cu_levels: ComputeConfig::cu_levels(),
            cu_freqs: ComputeConfig::freq_levels(),
            mem_freqs: MemoryConfig::freq_levels(),
        }
    }

    /// Number of operating points in the space.
    pub fn len(&self) -> usize {
        self.cu_levels.len() * self.cu_freqs.len() * self.mem_freqs.len()
    }

    /// Whether the space is empty (never true for the HD7970 space).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `cfg` lies in this space.
    pub fn contains(&self, cfg: HwConfig) -> bool {
        self.cu_levels.contains(&cfg.compute.cu_count())
            && self.cu_freqs.contains(&cfg.compute.freq())
            && self.mem_freqs.contains(&cfg.memory.bus_freq())
    }

    /// Iterates over every operating point, memory-major then CU count then
    /// frequency (the order is stable and documented so experiment output is
    /// reproducible).
    pub fn iter(&self) -> impl Iterator<Item = HwConfig> + '_ {
        self.mem_freqs.iter().flat_map(move |&m| {
            self.cu_levels.iter().flat_map(move |&c| {
                self.cu_freqs.iter().map(move |&f| {
                    HwConfig::new(
                        ComputeConfig::new(c, f).expect("grid values are valid"),
                        MemoryConfig::new(m).expect("grid values are valid"),
                    )
                })
            })
        })
    }

    /// All valid CU counts.
    pub fn cu_levels(&self) -> &[u32] {
        &self.cu_levels
    }

    /// All valid compute frequencies.
    pub fn cu_freqs(&self) -> &[MegaHertz] {
        &self.cu_freqs
    }

    /// All valid memory bus frequencies.
    pub fn mem_freqs(&self) -> &[MegaHertz] {
        &self.mem_freqs
    }
}

impl Default for ConfigSpace {
    fn default() -> Self {
        Self::hd7970()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_448_points() {
        let space = ConfigSpace::hd7970();
        assert_eq!(space.len(), 448);
        assert_eq!(space.iter().count(), 448);
        assert!(!space.is_empty());
    }

    #[test]
    fn compute_config_validation() {
        assert!(ComputeConfig::new(4, MegaHertz(300)).is_ok());
        assert!(ComputeConfig::new(32, MegaHertz(1000)).is_ok());
        assert!(ComputeConfig::new(0, MegaHertz(300)).is_err());
        assert!(ComputeConfig::new(5, MegaHertz(300)).is_err());
        assert!(ComputeConfig::new(36, MegaHertz(300)).is_err());
        assert!(ComputeConfig::new(4, MegaHertz(250)).is_err());
        assert!(ComputeConfig::new(4, MegaHertz(1100)).is_err());
    }

    #[test]
    fn memory_config_validation() {
        assert!(MemoryConfig::new(MegaHertz(475)).is_ok());
        assert!(MemoryConfig::new(MegaHertz(1375)).is_ok());
        assert!(MemoryConfig::new(MegaHertz(500)).is_err());
        assert!(MemoryConfig::new(MegaHertz(400)).is_err());
        assert!(MemoryConfig::new(MegaHertz(1500)).is_err());
    }

    #[test]
    fn config_error_displays() {
        let err = ComputeConfig::new(5, MegaHertz(300)).unwrap_err();
        assert!(err.to_string().contains("CU count"));
    }

    #[test]
    fn peak_gflops_matches_paper() {
        // 32 CUs × 4 SIMD × 16 lanes × 2 ops (FMAC) × 1 GHz = 4096 GFLOPS.
        assert!((ComputeConfig::max_hd7970().peak_gflops() - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn peak_bandwidth_matches_paper() {
        let max = MemoryConfig::max_hd7970().peak_bandwidth();
        assert!((max.value() - 264.0).abs() < 0.1);
        let min = MemoryConfig::min_hd7970().peak_bandwidth();
        assert!((min.value() - 91.2).abs() < 0.1);
    }

    #[test]
    fn bandwidth_steps_are_about_30gbs() {
        let levels = MemoryConfig::freq_levels();
        assert_eq!(levels.len(), 7);
        for w in levels.windows(2) {
            let lo = MemoryConfig::new(w[0]).unwrap().peak_bandwidth().value();
            let hi = MemoryConfig::new(w[1]).unwrap().peak_bandwidth().value();
            assert!((hi - lo - 28.8).abs() < 0.1); // "steps of 30GB/s" (≈28.8)
        }
    }

    #[test]
    fn hw_ops_per_byte_at_extremes() {
        let max = HwConfig::max_hd7970();
        // 4096 GFLOPS / 264 GB/s ≈ 15.5 ops/byte.
        assert!((max.hw_ops_per_byte() - 15.51).abs() < 0.05);
        let min = HwConfig::min_hd7970();
        // 4 CUs × 128 ops × 0.3 GHz = 153.6 GFLOPS / 91.2 GB/s ≈ 1.68.
        assert!((min.hw_ops_per_byte() - 1.684).abs() < 0.01);
        assert!((min.hw_ops_per_byte_normalized() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stepping_up_and_down_is_inverse() {
        let cfg = HwConfig::new(
            ComputeConfig::new(16, MegaHertz(600)).unwrap(),
            MemoryConfig::new(MegaHertz(925)).unwrap(),
        );
        for t in Tunable::ALL {
            let up = cfg.step_up(t).unwrap();
            assert_eq!(up.step_down(t).unwrap(), cfg);
        }
    }

    #[test]
    fn stepping_saturates_at_bounds() {
        let max = HwConfig::max_hd7970();
        let min = HwConfig::min_hd7970();
        for t in Tunable::ALL {
            assert!(max.step_up(t).is_none());
            assert!(min.step_down(t).is_none());
            assert!(max.step_down(t).is_some());
            assert!(min.step_up(t).is_some());
        }
    }

    #[test]
    fn levels_and_fractions() {
        let min = HwConfig::min_hd7970();
        let max = HwConfig::max_hd7970();
        for t in Tunable::ALL {
            assert_eq!(min.level(t).index, 0);
            assert_eq!(min.level(t).fraction, 0.0);
            assert_eq!(max.level(t).fraction, 1.0);
            assert_eq!(max.level(t).index, max.level(t).count - 1);
        }
        assert_eq!(max.level(Tunable::CuCount).count, 8);
        assert_eq!(max.level(Tunable::CuFreq).count, 8);
        assert_eq!(max.level(Tunable::MemFreq).count, 7);
    }

    #[test]
    fn with_fraction_hits_grid_extremes() {
        let cfg = HwConfig::min_hd7970();
        let high = cfg
            .with_fraction(Tunable::CuCount, 1.0)
            .with_fraction(Tunable::CuFreq, 1.0)
            .with_fraction(Tunable::MemFreq, 1.0);
        assert_eq!(high, HwConfig::max_hd7970());
        let low = HwConfig::max_hd7970()
            .with_fraction(Tunable::CuCount, 0.0)
            .with_fraction(Tunable::CuFreq, 0.0)
            .with_fraction(Tunable::MemFreq, 0.0);
        assert_eq!(low, HwConfig::min_hd7970());
    }

    #[test]
    fn with_fraction_rounds_to_nearest_level() {
        let cfg = HwConfig::min_hd7970().with_fraction(Tunable::CuCount, 0.5);
        // Levels are 4..=32; 0.5 of 7 steps rounds to index 4 → 20 CUs.
        assert_eq!(cfg.compute.cu_count(), 20);
    }

    #[test]
    fn raw_values() {
        let max = HwConfig::max_hd7970();
        assert_eq!(max.raw_value(Tunable::CuCount), 32);
        assert_eq!(max.raw_value(Tunable::CuFreq), 1000);
        assert_eq!(max.raw_value(Tunable::MemFreq), 1375);
    }

    #[test]
    fn space_contains_every_iterated_point() {
        let space = ConfigSpace::hd7970();
        for cfg in space.iter() {
            assert!(space.contains(cfg));
        }
    }

    #[test]
    fn display_formats() {
        let max = HwConfig::max_hd7970();
        let text = max.to_string();
        assert!(text.contains("32 CUs"));
        assert!(text.contains("1000 MHz"));
        assert!(text.contains("264 GB/s"));
        assert_eq!(Tunable::CuCount.to_string(), "#CUs");
    }
}
