//! The typed session configuration behind the `HARMONIA_*` environment
//! knobs.
//!
//! Three environment variables tune a Harmonia process — [`TRACE_ENV`]
//! enables decision telemetry, [`THREADS_ENV`] overrides the sweep pool
//! width, and [`FAULT_SEED_ENV`] seeds the chaos fault plans. Their parsing
//! used to be scattered across the telemetry, sweep, and fault modules;
//! [`Session`] centralizes it in one place so every consumer agrees on the
//! semantics and programmatic overrides compose with the environment:
//!
//! ```
//! use harmonia_types::session::Session;
//!
//! // Environment first, explicit overrides second.
//! let session = Session::from_env().with_trace(true);
//! assert!(session.trace());
//! ```
//!
//! The CI matrix runs the suite once per knob (`default`, `HARMONIA_THREADS=1`,
//! `HARMONIA_TRACE=1`, `HARMONIA_FAULT_SEED=1`); a grep gate keeps
//! `std::env::var` reads of these knobs out of every other module.

/// Environment variable that globally enables runtime decision tracing
/// (`HARMONIA_TRACE=1` or `=true`, case-insensitive).
pub const TRACE_ENV: &str = "HARMONIA_TRACE";

/// Environment variable that overrides the sweep worker-pool width
/// (`HARMONIA_THREADS=<n>`, positive integers only).
pub const THREADS_ENV: &str = "HARMONIA_THREADS";

/// Environment variable that seeds chaos fault plans
/// (`HARMONIA_FAULT_SEED=<u64>`).
pub const FAULT_SEED_ENV: &str = "HARMONIA_FAULT_SEED";

/// Environment variable that sets the fleet scheduler's device count
/// (`HARMONIA_FLEET_DEVICES=<n>`, positive integers only).
pub const FLEET_DEVICES_ENV: &str = "HARMONIA_FLEET_DEVICES";

/// Environment variable that sets the fleet scheduler's global power cap in
/// watts (`HARMONIA_FLEET_CAP_W=<watts>`, positive finite numbers only).
pub const FLEET_CAP_ENV: &str = "HARMONIA_FLEET_CAP_W";

/// Environment variable that selects the target device by catalog name
/// (`HARMONIA_DEVICE=<name>`, e.g. `hd7970`, `v100`, `h100`, `jetson-orin`).
/// The raw name is carried verbatim; resolution against the catalog happens
/// at the construction site so unknown names fail loudly, not silently.
pub const DEVICE_ENV: &str = "HARMONIA_DEVICE";

/// Default fault-plan seed when [`FAULT_SEED_ENV`] is unset or unparsable.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17;

/// A process-wide session configuration: the parsed values of the
/// `HARMONIA_*` knobs, with builder-style programmatic overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    trace: bool,
    threads: Option<usize>,
    fault_seed: u64,
    fleet_devices: Option<usize>,
    fleet_cap_w: Option<f64>,
    device: Option<String>,
}

impl Default for Session {
    /// The configuration with every knob unset: tracing off, pool width
    /// from the platform, the default fault seed, no fleet overrides.
    fn default() -> Self {
        Self {
            trace: false,
            threads: None,
            fault_seed: DEFAULT_FAULT_SEED,
            fleet_devices: None,
            fleet_cap_w: None,
            device: None,
        }
    }
}

impl Session {
    /// Parses the session from the process environment. This is the only
    /// place in the workspace that reads the `HARMONIA_*` variables.
    pub fn from_env() -> Self {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// Parses the session from an arbitrary key→value lookup — the
    /// testable core of [`from_env`](Self::from_env). Parsing semantics:
    ///
    /// * trace: enabled iff the value is `1` or `true` (case-insensitive);
    /// * threads: a positive integer, anything else ignored;
    /// * fault seed: a `u64`, anything else falls back to
    ///   [`DEFAULT_FAULT_SEED`];
    /// * fleet devices: a positive integer, anything else ignored;
    /// * fleet cap: a positive finite number of watts, anything else
    ///   ignored;
    /// * device: a non-empty catalog name carried verbatim (trimmed),
    ///   resolved against the catalog at the construction site.
    pub fn from_lookup<F: Fn(&str) -> Option<String>>(lookup: F) -> Self {
        Self {
            trace: lookup(TRACE_ENV)
                .is_some_and(|v| v == "1" || v.eq_ignore_ascii_case("true")),
            threads: lookup(THREADS_ENV)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0),
            fault_seed: lookup(FAULT_SEED_ENV)
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(DEFAULT_FAULT_SEED),
            fleet_devices: lookup(FLEET_DEVICES_ENV)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0),
            fleet_cap_w: lookup(FLEET_CAP_ENV)
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|w| w.is_finite() && *w > 0.0),
            device: lookup(DEVICE_ENV)
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty()),
        }
    }

    /// Overrides the tracing switch (wins over the environment).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Overrides the sweep pool width; `None` restores the platform
    /// default (wins over the environment).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads.filter(|&n| n > 0);
        self
    }

    /// Overrides the fault-plan seed (wins over the environment).
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Overrides the fleet device count; `None` restores "let the caller
    /// pick" (wins over the environment).
    pub fn with_fleet_devices(mut self, devices: Option<usize>) -> Self {
        self.fleet_devices = devices.filter(|&n| n > 0);
        self
    }

    /// Overrides the fleet global power cap in watts; `None` restores
    /// "uncapped" (wins over the environment).
    pub fn with_fleet_cap_w(mut self, cap_w: Option<f64>) -> Self {
        self.fleet_cap_w = cap_w.filter(|w| w.is_finite() && *w > 0.0);
        self
    }

    /// Overrides the target device name; `None` restores the default
    /// device (wins over the environment). Empty names are rejected.
    pub fn with_device(mut self, device: Option<String>) -> Self {
        self.device = device
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty());
        self
    }

    /// Whether decision telemetry is enabled.
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// The sweep pool-width override, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The chaos fault-plan seed.
    pub fn fault_seed(&self) -> u64 {
        self.fault_seed
    }

    /// The fleet device-count override, if any.
    pub fn fleet_devices(&self) -> Option<usize> {
        self.fleet_devices
    }

    /// The fleet global power cap in watts, if any.
    pub fn fleet_cap_w(&self) -> Option<f64> {
        self.fleet_cap_w
    }

    /// The requested device name, if any (raw — resolve it against the
    /// catalog with `DeviceSpec::from_str`).
    pub fn device(&self) -> Option<&str> {
        self.device.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lookup(vars: &[(&str, &str)]) -> impl Fn(&str) -> Option<String> {
        let map: HashMap<String, String> = vars
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        move |key: &str| map.get(key).cloned()
    }

    #[test]
    fn empty_environment_is_the_default_session() {
        let s = Session::from_lookup(|_| None);
        assert_eq!(s, Session::default());
        assert!(!s.trace());
        assert_eq!(s.threads(), None);
        assert_eq!(s.fault_seed(), DEFAULT_FAULT_SEED);
    }

    /// The five CI matrix legs, round-tripped through the parser: default,
    /// single-thread, traced, fault-seeded, and device-selected.
    #[test]
    fn ci_matrix_legs_parse_to_their_sessions() {
        let legs: [(&[(&str, &str)], Session); 5] = [
            (&[], Session::default()),
            (
                &[(THREADS_ENV, "1")],
                Session::default().with_threads(Some(1)),
            ),
            (&[(TRACE_ENV, "1")], Session::default().with_trace(true)),
            (
                &[(FAULT_SEED_ENV, "1")],
                Session::default().with_fault_seed(1),
            ),
            (
                &[(DEVICE_ENV, "v100")],
                Session::default().with_device(Some("v100".to_string())),
            ),
        ];
        for (vars, expected) in legs {
            assert_eq!(Session::from_lookup(lookup(vars)), expected, "leg {vars:?}");
        }
    }

    #[test]
    fn device_is_carried_verbatim_but_trimmed_and_never_empty() {
        assert_eq!(
            Session::from_lookup(lookup(&[(DEVICE_ENV, "jetson-orin")])).device(),
            Some("jetson-orin")
        );
        assert_eq!(
            Session::from_lookup(lookup(&[(DEVICE_ENV, "  h100 ")])).device(),
            Some("h100")
        );
        // Unknown names are carried too — resolution errors at the
        // construction site, not silently here.
        assert_eq!(
            Session::from_lookup(lookup(&[(DEVICE_ENV, "gtx480")])).device(),
            Some("gtx480")
        );
        for v in ["", "   "] {
            assert_eq!(
                Session::from_lookup(lookup(&[(DEVICE_ENV, v)])).device(),
                None,
                "{v:?}"
            );
        }
        assert_eq!(Session::default().device(), None);
    }

    #[test]
    fn device_override_wins_over_the_environment() {
        let env = lookup(&[(DEVICE_ENV, "v100")]);
        let s = Session::from_lookup(&env).with_device(Some("h100".to_string()));
        assert_eq!(s.device(), Some("h100"));
        let cleared = Session::from_lookup(&env).with_device(None);
        assert_eq!(cleared.device(), None);
        let blank = Session::from_lookup(&env).with_device(Some("  ".to_string()));
        assert_eq!(blank.device(), None);
    }

    #[test]
    fn trace_accepts_one_and_true_case_insensitively() {
        for v in ["1", "true", "TRUE", "True"] {
            assert!(Session::from_lookup(lookup(&[(TRACE_ENV, v)])).trace(), "{v}");
        }
        for v in ["0", "", "yes", "on", "2"] {
            assert!(!Session::from_lookup(lookup(&[(TRACE_ENV, v)])).trace(), "{v}");
        }
    }

    #[test]
    fn threads_must_be_a_positive_integer() {
        assert_eq!(
            Session::from_lookup(lookup(&[(THREADS_ENV, "8")])).threads(),
            Some(8)
        );
        for v in ["0", "-3", "eight", "", "1.5"] {
            assert_eq!(
                Session::from_lookup(lookup(&[(THREADS_ENV, v)])).threads(),
                None,
                "{v}"
            );
        }
    }

    #[test]
    fn fault_seed_falls_back_to_the_default_on_garbage() {
        assert_eq!(
            Session::from_lookup(lookup(&[(FAULT_SEED_ENV, "42")])).fault_seed(),
            42
        );
        for v in ["", "-1", "0x10", "seed"] {
            assert_eq!(
                Session::from_lookup(lookup(&[(FAULT_SEED_ENV, v)])).fault_seed(),
                DEFAULT_FAULT_SEED,
                "{v}"
            );
        }
    }

    #[test]
    fn programmatic_overrides_win_over_the_environment() {
        let env = lookup(&[(TRACE_ENV, "1"), (THREADS_ENV, "4"), (FAULT_SEED_ENV, "7")]);
        let s = Session::from_lookup(&env)
            .with_trace(false)
            .with_threads(Some(2))
            .with_fault_seed(99);
        assert!(!s.trace());
        assert_eq!(s.threads(), Some(2));
        assert_eq!(s.fault_seed(), 99);
        // And the un-overridden parse still reflects the environment.
        let parsed = Session::from_lookup(&env);
        assert!(parsed.trace());
        assert_eq!(parsed.threads(), Some(4));
        assert_eq!(parsed.fault_seed(), 7);
    }

    #[test]
    fn zero_thread_override_is_rejected_like_the_env_value() {
        assert_eq!(Session::default().with_threads(Some(0)).threads(), None);
    }

    #[test]
    fn fleet_devices_must_be_a_positive_integer() {
        assert_eq!(
            Session::from_lookup(lookup(&[(FLEET_DEVICES_ENV, "1024")])).fleet_devices(),
            Some(1024)
        );
        for v in ["0", "-8", "many", "", "2.5"] {
            assert_eq!(
                Session::from_lookup(lookup(&[(FLEET_DEVICES_ENV, v)])).fleet_devices(),
                None,
                "{v}"
            );
        }
        assert_eq!(Session::default().fleet_devices(), None);
    }

    #[test]
    fn fleet_cap_must_be_positive_finite_watts() {
        assert_eq!(
            Session::from_lookup(lookup(&[(FLEET_CAP_ENV, "153600")])).fleet_cap_w(),
            Some(153600.0)
        );
        assert_eq!(
            Session::from_lookup(lookup(&[(FLEET_CAP_ENV, "185.5")])).fleet_cap_w(),
            Some(185.5)
        );
        for v in ["0", "-185", "inf", "NaN", "lots", ""] {
            assert_eq!(
                Session::from_lookup(lookup(&[(FLEET_CAP_ENV, v)])).fleet_cap_w(),
                None,
                "{v}"
            );
        }
        assert_eq!(Session::default().fleet_cap_w(), None);
    }

    #[test]
    fn fleet_overrides_win_and_reject_degenerate_values() {
        let env = lookup(&[(FLEET_DEVICES_ENV, "8"), (FLEET_CAP_ENV, "100")]);
        let s = Session::from_lookup(&env)
            .with_fleet_devices(Some(16))
            .with_fleet_cap_w(Some(200.0));
        assert_eq!(s.fleet_devices(), Some(16));
        assert_eq!(s.fleet_cap_w(), Some(200.0));
        let cleared = Session::from_lookup(&env)
            .with_fleet_devices(Some(0))
            .with_fleet_cap_w(Some(f64::NAN));
        assert_eq!(cleared.fleet_devices(), None);
        assert_eq!(cleared.fleet_cap_w(), None);
    }

    #[test]
    fn from_env_matches_a_manual_environment_lookup() {
        // Whatever the ambient environment holds, from_env and from_lookup
        // over the same source agree.
        assert_eq!(
            Session::from_env(),
            Session::from_lookup(|k| std::env::var(k).ok())
        );
    }
}
