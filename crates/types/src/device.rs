//! The device catalog: every hardware number in one place.
//!
//! Historically the workspace hardcoded the paper's AMD Radeon HD7970 test
//! bed — its config grid in `config.rs` constants, its geometry in the
//! simulator's `GpuDescriptor`, its DVFS table in `dvfs.rs`, and its power
//! calibration in `harmonia_power`'s parameter defaults. [`DeviceSpec`]
//! bundles all four so a session can target any catalog device:
//!
//! * [`GridSpec`] — the managed configuration grid (CU counts, compute
//!   clocks, memory clocks) plus the peak-throughput scalars derived from
//!   the bus ([`GridSpec::HD7970`] is the paper's 448-point space);
//! * [`GpuDescriptor`] — microarchitectural geometry the timing models
//!   consume (SIMDs, wave slots, caches, DRAM latency), carrying its grid;
//! * [`crate::DvfsTable`] — voltage/frequency operating points;
//! * [`DevicePower`] — the power-model calibration
//!   ([`ComputePowerParams`], [`MemoryPowerParams`], board overhead).
//!
//! Catalog entries are selected by name ([`DeviceSpec::from_str`] /
//! `Display`): the paper's `hd7970`, a V100-class and an H100-class
//! big-HBM part, and a Jetson-class edge part. The hd7970 entry reproduces
//! the legacy constructors bit for bit; every other device is pure new
//! capability. Simulation caches key on [`GpuDescriptor::fingerprint`] so
//! results for different devices never alias.

use crate::config::ConfigSpace;
use crate::dvfs::{DpmState, DvfsTable};
use crate::units::{MegaHertz, Volts, Watts};
use crate::HwConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// GridSpec
// ---------------------------------------------------------------------------

/// The managed configuration grid of one device: the ranges and step sizes
/// of the three tunables, plus the scalars that turn a configuration into
/// peak throughput numbers. All fields are plain scalars so grids are
/// `const`-constructible ([`GridSpec::HD7970`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Minimum number of active compute units.
    pub cu_min: u32,
    /// Maximum number of compute units physically present.
    pub cu_max: u32,
    /// Granularity of compute-unit power gating.
    pub cu_step: u32,
    /// Minimum compute (shader) clock.
    pub cu_freq_min: MegaHertz,
    /// Maximum compute clock.
    pub cu_freq_max: MegaHertz,
    /// Compute clock granularity in MHz.
    pub cu_freq_step: u32,
    /// Minimum memory bus clock.
    pub mem_freq_min: MegaHertz,
    /// Maximum memory bus clock.
    pub mem_freq_max: MegaHertz,
    /// Memory bus clock granularity in MHz.
    pub mem_freq_step: u32,
    /// Width of the memory interface in bits.
    pub mem_bus_width_bits: u32,
    /// Data words moved per bus clock (GDDR5: 4, DDR-style HBM: 2).
    pub mem_transfer_rate: f64,
    /// Peak FLOPs one CU retires per clock (FMAC counts two): for the
    /// HD7970's GCN CUs, 4 SIMDs × 16 lanes × 2 = 128.
    pub flops_per_cu_clock: f64,
}

impl GridSpec {
    /// The paper's HD7970 grid: 8 CU levels × 8 compute clocks × 7 memory
    /// clocks = 448 operating points.
    pub const HD7970: GridSpec = GridSpec {
        cu_min: 4,
        cu_max: 32,
        cu_step: 4,
        cu_freq_min: MegaHertz(300),
        cu_freq_max: MegaHertz(1000),
        cu_freq_step: 100,
        mem_freq_min: MegaHertz(475),
        mem_freq_max: MegaHertz(1375),
        mem_freq_step: 150,
        mem_bus_width_bits: 384,
        mem_transfer_rate: 4.0,
        flops_per_cu_clock: 128.0,
    };

    /// All valid CU counts, ascending.
    pub fn cu_levels(&self) -> Vec<u32> {
        (self.cu_min..=self.cu_max)
            .step_by(self.cu_step as usize)
            .collect()
    }

    /// All valid compute frequencies, ascending.
    pub fn cu_freq_levels(&self) -> Vec<MegaHertz> {
        (self.cu_freq_min.value()..=self.cu_freq_max.value())
            .step_by(self.cu_freq_step as usize)
            .map(MegaHertz)
            .collect()
    }

    /// All valid memory bus frequencies, ascending.
    pub fn mem_freq_levels(&self) -> Vec<MegaHertz> {
        (self.mem_freq_min.value()..=self.mem_freq_max.value())
            .step_by(self.mem_freq_step as usize)
            .map(MegaHertz)
            .collect()
    }

    /// Number of CU levels on the grid.
    pub fn cu_level_count(&self) -> usize {
        ((self.cu_max - self.cu_min) / self.cu_step + 1) as usize
    }

    /// Number of compute-clock levels on the grid.
    pub fn cu_freq_level_count(&self) -> usize {
        ((self.cu_freq_max.value() - self.cu_freq_min.value()) / self.cu_freq_step + 1) as usize
    }

    /// Number of memory-clock levels on the grid.
    pub fn mem_freq_level_count(&self) -> usize {
        ((self.mem_freq_max.value() - self.mem_freq_min.value()) / self.mem_freq_step + 1) as usize
    }

    /// Total operating points (the cross product of the three tunables).
    pub fn len(&self) -> usize {
        self.cu_level_count() * self.cu_freq_level_count() * self.mem_freq_level_count()
    }

    /// Whether the grid is degenerate (never true for catalog grids).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An upper bound on the number of downward steps any greedy descent
    /// can take before hitting the grid floor (sum of the per-tunable level
    /// counts).
    pub fn descent_bound(&self) -> usize {
        self.cu_level_count() + self.cu_freq_level_count() + self.mem_freq_level_count()
    }

    /// Bytes the memory interface moves per bus clock
    /// (`width/8 × transfer-rate`; 192 for the HD7970).
    pub fn bytes_per_clock(&self) -> f64 {
        f64::from(self.mem_bus_width_bits / 8) * self.mem_transfer_rate
    }

    /// The nearest on-grid compute clock to `freq` (ties round down), used
    /// to map published DVFS states onto the managed grid.
    pub fn snap_cu_freq(&self, freq: MegaHertz) -> MegaHertz {
        let lo = self.cu_freq_min.value();
        let hi = self.cu_freq_max.value();
        let v = freq.value().clamp(lo, hi);
        let level = (v - lo + self.cu_freq_step / 2) / self.cu_freq_step;
        let level = (level as usize).min(self.cu_freq_level_count() - 1) as u32;
        MegaHertz(lo + level * self.cu_freq_step)
    }

    /// Folds every grid field into an FNV-1a fingerprint (device cache
    /// keying — see [`GpuDescriptor::fingerprint`]).
    fn hash_into(&self, h: &mut Fnv) {
        h.u32(self.cu_min);
        h.u32(self.cu_max);
        h.u32(self.cu_step);
        h.u32(self.cu_freq_min.value());
        h.u32(self.cu_freq_max.value());
        h.u32(self.cu_freq_step);
        h.u32(self.mem_freq_min.value());
        h.u32(self.mem_freq_max.value());
        h.u32(self.mem_freq_step);
        h.u32(self.mem_bus_width_bits);
        h.f64(self.mem_transfer_rate);
        h.f64(self.flops_per_cu_clock);
    }
}

impl Default for GridSpec {
    fn default() -> Self {
        Self::HD7970
    }
}

/// Minimal FNV-1a accumulator for device fingerprints (same constants the
/// fleet digests use).
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

// ---------------------------------------------------------------------------
// GpuDescriptor (moved here from harmonia_sim so the catalog owns it)
// ---------------------------------------------------------------------------

/// Static hardware parameters of the simulated GPU.
///
/// Defaults ([`GpuDescriptor::hd7970`]) follow Section 2.2 of the paper:
/// up to 32 CUs with four 16-lane SIMD units each, 16 KiB L1 data cache and
/// 64 KiB LDS per CU, a shared 768 KiB L2, and six 64-bit dual-channel
/// GDDR5 memory controllers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuDescriptor {
    /// The managed configuration grid of this device.
    pub grid: GridSpec,
    /// Maximum number of compute units physically present.
    pub max_cu: u32,
    /// SIMD vector units per CU.
    pub simds_per_cu: u32,
    /// Processing elements (lanes) per SIMD.
    pub lanes_per_simd: u32,
    /// Work-items per wavefront (GCN: 64).
    pub wave_size: u32,
    /// Hardware wave slots per SIMD (GCN: 10).
    pub max_waves_per_simd: u32,
    /// Vector registers available per SIMD lane pool (GCN: 256 per thread).
    pub vgprs_per_simd: u32,
    /// Scalar registers available per SIMD (GCN: 512).
    pub sgprs_per_simd: u32,
    /// Maximum SGPRs one wave may use (the paper normalizes by 102).
    pub max_sgprs_per_wave: u32,
    /// Local data share per CU, in bytes (64 KiB).
    pub lds_per_cu_bytes: u32,
    /// L1 data cache per CU, in bytes (16 KiB).
    pub l1_per_cu_bytes: u32,
    /// Shared L2 cache, in bytes (768 KiB).
    pub l2_bytes: u32,
    /// Number of memory channels (six dual-channel controllers).
    pub mem_channels: u32,
    /// Cache line / memory transaction size in bytes.
    pub line_bytes: u32,
    /// Fraction of theoretical DRAM bandwidth achievable by a perfect
    /// streaming access pattern (bank conflicts, refresh, bus turnaround).
    pub dram_efficiency: f64,
    /// Bytes per *compute-domain* cycle the L2→memory-controller crossing
    /// can deliver. This is the clock-domain coupling of Section 3.5: at low
    /// compute clocks the crossing, not the DRAM, can bound bandwidth.
    pub crossing_bytes_per_cu_cycle: f64,
    /// Bytes per compute-domain cycle the L2 can serve to the CUs.
    pub l2_bytes_per_cu_cycle: f64,
    /// Unloaded DRAM access latency in nanoseconds at the maximum memory
    /// bus clock.
    pub dram_latency_ns: f64,
    /// Additional latency in nanoseconds per unit of memory-clock slowdown
    /// (the controller and PHY run slower too).
    pub dram_latency_slowdown_ns: f64,
    /// Memory requests a single wave can keep in flight (vector memory
    /// unit depth).
    pub outstanding_per_wave: f64,
}

impl GpuDescriptor {
    /// The AMD Radeon HD7970 test bed of the paper.
    pub fn hd7970() -> Self {
        Self {
            grid: GridSpec::HD7970,
            max_cu: 32,
            simds_per_cu: 4,
            lanes_per_simd: 16,
            wave_size: 64,
            max_waves_per_simd: 10,
            vgprs_per_simd: 256,
            sgprs_per_simd: 512,
            max_sgprs_per_wave: 102,
            lds_per_cu_bytes: 64 * 1024,
            l1_per_cu_bytes: 16 * 1024,
            l2_bytes: 768 * 1024,
            mem_channels: 6,
            line_bytes: 64,
            dram_efficiency: 0.85,
            crossing_bytes_per_cu_cycle: 320.0,
            l2_bytes_per_cu_cycle: 512.0,
            dram_latency_ns: 190.0,
            dram_latency_slowdown_ns: 110.0,
            outstanding_per_wave: 1.5,
        }
    }

    /// Total SIMDs for a given active CU count.
    pub fn simds(&self, active_cus: u32) -> u32 {
        active_cus * self.simds_per_cu
    }

    /// Peak vector issue rate in lane-operations per second for an active CU
    /// count and compute clock in hertz.
    pub fn peak_lane_ops_per_sec(&self, active_cus: u32, cu_freq_hz: f64) -> f64 {
        f64::from(self.simds(active_cus) * self.lanes_per_simd) * cu_freq_hz
    }

    /// DRAM latency in seconds at a given memory bus frequency (hertz),
    /// relative to the maximum clock `max_hz`.
    pub fn dram_latency_s(&self, mem_freq_hz: f64, max_hz: f64) -> f64 {
        let slowdown = (max_hz / mem_freq_hz - 1.0).max(0.0);
        (self.dram_latency_ns + self.dram_latency_slowdown_ns * slowdown) * 1.0e-9
    }

    /// An FNV-1a digest of every descriptor field (grid included). Folded
    /// into simulation cache keys and sweep-plan identities so results for
    /// different devices never alias each other.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        self.grid.hash_into(&mut h);
        h.u32(self.max_cu);
        h.u32(self.simds_per_cu);
        h.u32(self.lanes_per_simd);
        h.u32(self.wave_size);
        h.u32(self.max_waves_per_simd);
        h.u32(self.vgprs_per_simd);
        h.u32(self.sgprs_per_simd);
        h.u32(self.max_sgprs_per_wave);
        h.u32(self.lds_per_cu_bytes);
        h.u32(self.l1_per_cu_bytes);
        h.u32(self.l2_bytes);
        h.u32(self.mem_channels);
        h.u32(self.line_bytes);
        h.f64(self.dram_efficiency);
        h.f64(self.crossing_bytes_per_cu_cycle);
        h.f64(self.l2_bytes_per_cu_cycle);
        h.f64(self.dram_latency_ns);
        h.f64(self.dram_latency_slowdown_ns);
        h.f64(self.outstanding_per_wave);
        h.0
    }
}

impl Default for GpuDescriptor {
    fn default() -> Self {
        Self::hd7970()
    }
}

// ---------------------------------------------------------------------------
// Power calibration (moved here from harmonia_power so the catalog owns it)
// ---------------------------------------------------------------------------

/// Tunable parameters of the chip power model. Defaults are calibrated so a
/// fully busy 32-CU/1 GHz chip draws ≈180 W, matching the HD7970's ~250 W
/// board TDP once memory and board overheads are added.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputePowerParams {
    /// Effective switched capacitance per CU, in W / (V²·GHz) at activity 1.
    pub c_dyn_per_cu: f64,
    /// Fraction of a CU's dynamic power burned just by clocking it while it
    /// is active but not issuing (clock tree, scheduler).
    pub idle_clock_fraction: f64,
    /// Leakage per active CU at the reference voltage, in watts.
    pub leak_per_cu_ref: f64,
    /// Leakage of the always-on uncore at the reference voltage, in watts.
    pub leak_uncore_ref: f64,
    /// Reference voltage for the leakage constants.
    pub leak_ref_voltage: Volts,
    /// Exponent of the leakage–voltage relationship (super-linear).
    pub leak_voltage_exponent: f64,
    /// Uncore (L2, crossbar, command processor) switched capacitance in
    /// W / (V²·GHz).
    pub c_dyn_uncore: f64,
    /// Additional uncore dynamic power per unit of L2↔DRAM traffic fraction.
    pub uncore_traffic_coeff: f64,
    /// Integrated memory-controller power per memory-bus GHz (always-on part).
    pub mc_per_mem_ghz: f64,
    /// Memory-controller power at full DRAM traffic, in watts.
    pub mc_traffic_coeff: f64,
}

impl Default for ComputePowerParams {
    fn default() -> Self {
        Self {
            c_dyn_per_cu: 2.9,
            idle_clock_fraction: 0.25,
            leak_per_cu_ref: 0.72,
            leak_uncore_ref: 7.0,
            leak_ref_voltage: Volts(1.19),
            leak_voltage_exponent: 3.0,
            c_dyn_uncore: 9.0,
            uncore_traffic_coeff: 6.0,
            mc_per_mem_ghz: 0.8,
            mc_traffic_coeff: 1.2,
        }
    }
}

/// Tunable parameters of the GDDR5 + PHY power model. Defaults are
/// calibrated so streaming at 264 GB/s costs ≈50 W of memory power —
/// a significant share of card power, as Figure 1 shows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryPowerParams {
    /// DRAM background power per memory-bus GHz (all devices), in watts.
    pub background_per_ghz: f64,
    /// PLL plus DDR PHY power per memory-bus GHz, in watts.
    pub phy_per_ghz: f64,
    /// Static floor of PHY/PLL power independent of frequency, in watts.
    pub phy_static: f64,
    /// Activate/pre-charge energy per byte of DRAM traffic, in pJ/byte.
    pub activate_pj_per_byte: f64,
    /// Read/write array energy per byte, in pJ/byte.
    pub rw_pj_per_byte: f64,
    /// I/O termination energy per byte, in pJ/byte.
    pub termination_pj_per_byte: f64,
    /// Fractional increase in per-byte read/write + termination energy per
    /// unit of slowdown relative to the maximum bus clock (the "longer
    /// intervals between array accesses" effect).
    pub slow_clock_energy_penalty: f64,
    /// When `true`, scales DRAM power with the square of a hypothetical
    /// frequency-proportional voltage — the what-if the paper could not
    /// measure. `false` models the real fixed-voltage platform.
    pub voltage_scaling: bool,
}

impl Default for MemoryPowerParams {
    fn default() -> Self {
        Self {
            background_per_ghz: 9.5,
            phy_per_ghz: 7.5,
            phy_static: 2.0,
            activate_pj_per_byte: 25.0,
            rw_pj_per_byte: 70.0,
            termination_pj_per_byte: 30.0,
            slow_clock_energy_penalty: 0.06,
            voltage_scaling: false,
        }
    }
}

/// One device's full power calibration: chip-side and memory-side model
/// parameters plus the constant board overhead (fan, VRMs, traces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePower {
    /// Chip (compute-side) power parameters.
    pub compute: ComputePowerParams,
    /// Off-chip memory power parameters.
    pub memory: MemoryPowerParams,
    /// Rest-of-card power (the paper's OtherPwr), constant.
    pub other: Watts,
}

impl Default for DevicePower {
    /// The HD7970 calibration.
    fn default() -> Self {
        Self {
            compute: ComputePowerParams::default(),
            memory: MemoryPowerParams::default(),
            other: Watts(33.0),
        }
    }
}

// ---------------------------------------------------------------------------
// DeviceSpec + catalog
// ---------------------------------------------------------------------------

/// A complete device: name, geometry + grid, DVFS table, and power
/// calibration. Everything a session needs to simulate and govern one GPU.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceSpec {
    /// Canonical catalog name (`hd7970`, `v100`, `h100`, `jetson-orin`).
    pub name: String,
    /// Microarchitectural geometry, carrying the managed grid.
    pub gpu: GpuDescriptor,
    /// Voltage/frequency operating points.
    pub dvfs: DvfsTable,
    /// Power-model calibration.
    pub power: DevicePower,
}

impl DeviceSpec {
    /// The paper's AMD Radeon HD7970 test bed — bit-identical to the legacy
    /// `hd7970()` constructors scattered through the workspace.
    pub fn hd7970() -> Self {
        Self {
            name: "hd7970".to_string(),
            gpu: GpuDescriptor::hd7970(),
            dvfs: DvfsTable::hd7970(),
            power: DevicePower::default(),
        }
    }

    /// A V100-class big-HBM datacenter part: 80 wide CUs behind a 4096-bit
    /// HBM2 interface (≈15.4 TFLOPS, ≈896 GB/s, ~300 W).
    pub fn v100() -> Self {
        Self {
            name: "v100".to_string(),
            gpu: GpuDescriptor {
                grid: GridSpec {
                    cu_min: 8,
                    cu_max: 80,
                    cu_step: 8,
                    cu_freq_min: MegaHertz(600),
                    cu_freq_max: MegaHertz(1500),
                    cu_freq_step: 100,
                    mem_freq_min: MegaHertz(500),
                    mem_freq_max: MegaHertz(875),
                    mem_freq_step: 75,
                    mem_bus_width_bits: 4096,
                    mem_transfer_rate: 2.0,
                    flops_per_cu_clock: 128.0,
                },
                max_cu: 80,
                simds_per_cu: 4,
                lanes_per_simd: 16,
                wave_size: 32,
                max_waves_per_simd: 16,
                vgprs_per_simd: 256,
                sgprs_per_simd: 512,
                max_sgprs_per_wave: 102,
                lds_per_cu_bytes: 96 * 1024,
                l1_per_cu_bytes: 128 * 1024,
                l2_bytes: 6 * 1024 * 1024,
                mem_channels: 32,
                line_bytes: 32,
                dram_efficiency: 0.83,
                crossing_bytes_per_cu_cycle: 1024.0,
                l2_bytes_per_cu_cycle: 2048.0,
                dram_latency_ns: 220.0,
                dram_latency_slowdown_ns: 120.0,
                outstanding_per_wave: 2.0,
            },
            dvfs: DvfsTable::from_states(
                vec![
                    DpmState {
                        name: "DPM0",
                        freq: MegaHertz(600),
                        voltage: Volts(0.70),
                    },
                    DpmState {
                        name: "DPM1",
                        freq: MegaHertz(900),
                        voltage: Volts(0.78),
                    },
                    DpmState {
                        name: "DPM2",
                        freq: MegaHertz(1300),
                        voltage: Volts(0.95),
                    },
                    DpmState {
                        name: "BOOST",
                        freq: MegaHertz(1500),
                        voltage: Volts(1.05),
                    },
                ],
                Volts(1.2),
            ),
            power: DevicePower {
                compute: ComputePowerParams {
                    c_dyn_per_cu: 1.2,
                    idle_clock_fraction: 0.25,
                    leak_per_cu_ref: 0.5,
                    leak_uncore_ref: 10.0,
                    leak_ref_voltage: Volts(1.05),
                    leak_voltage_exponent: 3.0,
                    c_dyn_uncore: 14.0,
                    uncore_traffic_coeff: 8.0,
                    mc_per_mem_ghz: 6.0,
                    mc_traffic_coeff: 3.0,
                },
                memory: MemoryPowerParams {
                    background_per_ghz: 12.0,
                    phy_per_ghz: 8.0,
                    phy_static: 3.0,
                    activate_pj_per_byte: 8.0,
                    rw_pj_per_byte: 18.0,
                    termination_pj_per_byte: 3.0,
                    slow_clock_energy_penalty: 0.05,
                    voltage_scaling: false,
                },
                other: Watts(20.0),
            },
        }
    }

    /// An H100-class part: 132 double-width CUs behind a 5120-bit HBM3
    /// interface (≈67 TFLOPS, ≈3.3 TB/s, ~700 W).
    pub fn h100() -> Self {
        Self {
            name: "h100".to_string(),
            gpu: GpuDescriptor {
                grid: GridSpec {
                    cu_min: 24,
                    cu_max: 132,
                    cu_step: 12,
                    cu_freq_min: MegaHertz(780),
                    cu_freq_max: MegaHertz(1980),
                    cu_freq_step: 120,
                    mem_freq_min: MegaHertz(1200),
                    mem_freq_max: MegaHertz(2600),
                    mem_freq_step: 200,
                    mem_bus_width_bits: 5120,
                    mem_transfer_rate: 2.0,
                    flops_per_cu_clock: 256.0,
                },
                max_cu: 132,
                simds_per_cu: 4,
                lanes_per_simd: 32,
                wave_size: 32,
                max_waves_per_simd: 16,
                vgprs_per_simd: 256,
                sgprs_per_simd: 512,
                max_sgprs_per_wave: 102,
                lds_per_cu_bytes: 228 * 1024,
                l1_per_cu_bytes: 256 * 1024,
                l2_bytes: 50 * 1024 * 1024,
                mem_channels: 40,
                line_bytes: 32,
                dram_efficiency: 0.82,
                crossing_bytes_per_cu_cycle: 2048.0,
                l2_bytes_per_cu_cycle: 4096.0,
                dram_latency_ns: 260.0,
                dram_latency_slowdown_ns: 130.0,
                outstanding_per_wave: 2.5,
            },
            dvfs: DvfsTable::from_states(
                vec![
                    DpmState {
                        name: "DPM0",
                        freq: MegaHertz(780),
                        voltage: Volts(0.62),
                    },
                    DpmState {
                        name: "DPM1",
                        freq: MegaHertz(1260),
                        voltage: Volts(0.72),
                    },
                    DpmState {
                        name: "DPM2",
                        freq: MegaHertz(1740),
                        voltage: Volts(0.85),
                    },
                    DpmState {
                        name: "BOOST",
                        freq: MegaHertz(1980),
                        voltage: Volts(0.95),
                    },
                ],
                Volts(1.1),
            ),
            power: DevicePower {
                compute: ComputePowerParams {
                    c_dyn_per_cu: 1.7,
                    idle_clock_fraction: 0.25,
                    leak_per_cu_ref: 0.55,
                    leak_uncore_ref: 15.0,
                    leak_ref_voltage: Volts(0.95),
                    leak_voltage_exponent: 3.0,
                    c_dyn_uncore: 30.0,
                    uncore_traffic_coeff: 12.0,
                    mc_per_mem_ghz: 8.0,
                    mc_traffic_coeff: 5.0,
                },
                memory: MemoryPowerParams {
                    background_per_ghz: 10.0,
                    phy_per_ghz: 6.0,
                    phy_static: 4.0,
                    activate_pj_per_byte: 6.0,
                    rw_pj_per_byte: 14.0,
                    termination_pj_per_byte: 2.0,
                    slow_clock_energy_penalty: 0.05,
                    voltage_scaling: false,
                },
                other: Watts(30.0),
            },
        }
    }

    /// A Jetson-class edge part: 16 CUs on a 256-bit LPDDR5 interface
    /// (≈5.3 TFLOPS, ≈205 GB/s, ~50 W module envelope).
    pub fn jetson_orin() -> Self {
        Self {
            name: "jetson-orin".to_string(),
            gpu: GpuDescriptor {
                grid: GridSpec {
                    cu_min: 4,
                    cu_max: 16,
                    cu_step: 2,
                    cu_freq_min: MegaHertz(300),
                    cu_freq_max: MegaHertz(1300),
                    cu_freq_step: 100,
                    mem_freq_min: MegaHertz(800),
                    mem_freq_max: MegaHertz(3200),
                    mem_freq_step: 300,
                    mem_bus_width_bits: 256,
                    mem_transfer_rate: 2.0,
                    flops_per_cu_clock: 256.0,
                },
                max_cu: 16,
                simds_per_cu: 4,
                lanes_per_simd: 32,
                wave_size: 32,
                max_waves_per_simd: 12,
                vgprs_per_simd: 256,
                sgprs_per_simd: 512,
                max_sgprs_per_wave: 102,
                lds_per_cu_bytes: 128 * 1024,
                l1_per_cu_bytes: 192 * 1024,
                l2_bytes: 4 * 1024 * 1024,
                mem_channels: 16,
                line_bytes: 32,
                dram_efficiency: 0.75,
                crossing_bytes_per_cu_cycle: 256.0,
                l2_bytes_per_cu_cycle: 512.0,
                dram_latency_ns: 320.0,
                dram_latency_slowdown_ns: 150.0,
                outstanding_per_wave: 1.8,
            },
            dvfs: DvfsTable::from_states(
                vec![
                    DpmState {
                        name: "DPM0",
                        freq: MegaHertz(300),
                        voltage: Volts(0.55),
                    },
                    DpmState {
                        name: "DPM1",
                        freq: MegaHertz(600),
                        voltage: Volts(0.65),
                    },
                    DpmState {
                        name: "DPM2",
                        freq: MegaHertz(1000),
                        voltage: Volts(0.80),
                    },
                    DpmState {
                        name: "BOOST",
                        freq: MegaHertz(1300),
                        voltage: Volts(0.95),
                    },
                ],
                Volts(1.05),
            ),
            power: DevicePower {
                compute: ComputePowerParams {
                    c_dyn_per_cu: 1.1,
                    idle_clock_fraction: 0.2,
                    leak_per_cu_ref: 0.3,
                    leak_uncore_ref: 3.0,
                    leak_ref_voltage: Volts(0.95),
                    leak_voltage_exponent: 3.0,
                    c_dyn_uncore: 4.0,
                    uncore_traffic_coeff: 2.5,
                    mc_per_mem_ghz: 1.2,
                    mc_traffic_coeff: 1.0,
                },
                memory: MemoryPowerParams {
                    background_per_ghz: 0.8,
                    phy_per_ghz: 0.7,
                    phy_static: 0.5,
                    activate_pj_per_byte: 6.0,
                    rw_pj_per_byte: 12.0,
                    termination_pj_per_byte: 1.5,
                    slow_clock_energy_penalty: 0.06,
                    voltage_scaling: false,
                },
                other: Watts(6.0),
            },
        }
    }

    /// Canonical names of every catalog device, in catalog order.
    pub fn catalog() -> [&'static str; 4] {
        ["hd7970", "v100", "h100", "jetson-orin"]
    }

    /// Looks a catalog device up by name (case-insensitive).
    pub fn lookup(name: &str) -> Option<Self> {
        let name = name.trim();
        if name.eq_ignore_ascii_case("hd7970") {
            Some(Self::hd7970())
        } else if name.eq_ignore_ascii_case("v100") {
            Some(Self::v100())
        } else if name.eq_ignore_ascii_case("h100") {
            Some(Self::h100())
        } else if name.eq_ignore_ascii_case("jetson-orin") {
            Some(Self::jetson_orin())
        } else {
            None
        }
    }

    /// The default device, interned: the paper's HD7970. Consumers that
    /// need a `&'static` borrow (registry defaults) share this instance.
    pub fn hd7970_static() -> &'static DeviceSpec {
        static HD7970: OnceLock<DeviceSpec> = OnceLock::new();
        HD7970.get_or_init(DeviceSpec::hd7970)
    }

    /// The device's managed configuration grid.
    pub fn grid(&self) -> &GridSpec {
        &self.gpu.grid
    }

    /// The device's full configuration space.
    pub fn config_space(&self) -> ConfigSpace {
        ConfigSpace::for_grid(&self.gpu.grid)
    }

    /// The device fingerprint (the descriptor's — what simulation caches
    /// and sweep plans key on).
    pub fn fingerprint(&self) -> u64 {
        self.gpu.fingerprint()
    }

    /// The watchdog safe state for this device: every CU active (gating is
    /// what misbehaves under faults), the compute clock at the second DVFS
    /// state snapped onto the grid, memory at full bandwidth. For the
    /// HD7970 this is exactly the legacy `safe_state()` (32 CUs @ 500 MHz,
    /// 1375 MHz bus).
    pub fn safe_state(&self) -> HwConfig {
        let states = self.dvfs.states();
        let target = states.get(1).unwrap_or(&states[0]).freq;
        let freq = self.gpu.grid.snap_cu_freq(target);
        HwConfig::new(
            crate::ComputeConfig::new_on(&self.gpu.grid, self.gpu.grid.cu_max, freq)
                .expect("snapped safe-state clock is on the grid"),
            crate::MemoryConfig::max_on(&self.gpu.grid),
        )
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::hd7970()
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Error returned when a device name does not match any catalog entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeviceError {
    got: String,
}

impl fmt::Display for ParseDeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown device '{}' (known: {})",
            self.got,
            DeviceSpec::catalog().join(", ")
        )
    }
}

impl std::error::Error for ParseDeviceError {}

impl FromStr for DeviceSpec {
    type Err = ParseDeviceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DeviceSpec::lookup(s).ok_or_else(|| ParseDeviceError { got: s.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComputeConfig, MegaHertz, MemoryConfig};

    #[test]
    fn hd7970_geometry_matches_paper() {
        let g = GpuDescriptor::hd7970();
        assert_eq!(g.max_cu, 32);
        assert_eq!(g.simds_per_cu, 4);
        assert_eq!(g.lanes_per_simd, 16);
        assert_eq!(g.wave_size, 64);
        assert_eq!(g.max_waves_per_simd, 10);
        assert_eq!(g.vgprs_per_simd, 256);
        assert_eq!(g.max_sgprs_per_wave, 102);
        assert_eq!(g.lds_per_cu_bytes, 65536);
        assert_eq!(g.l2_bytes, 786432);
        assert_eq!(g.mem_channels, 6);
        assert_eq!(g.grid, GridSpec::HD7970);
    }

    #[test]
    fn simd_count_scales_with_cus() {
        let g = GpuDescriptor::hd7970();
        assert_eq!(g.simds(32), 128);
        assert_eq!(g.simds(4), 16);
    }

    #[test]
    fn peak_lane_ops_at_max_is_128_gops() {
        // 128 SIMDs × 16 lanes × 1 GHz = 2048 G lane-ops/s (4096 GFLOPS with
        // FMAC counting two ops).
        let g = GpuDescriptor::hd7970();
        let ops = g.peak_lane_ops_per_sec(32, 1.0e9);
        assert!((ops - 2048.0e9).abs() < 1.0);
    }

    #[test]
    fn dram_latency_grows_as_clock_drops() {
        let g = GpuDescriptor::hd7970();
        let max = 1375.0e6;
        let at_max = g.dram_latency_s(max, max);
        let at_min = g.dram_latency_s(475.0e6, max);
        assert!((at_max - 190.0e-9).abs() < 1e-12);
        assert!(at_min > at_max);
    }

    #[test]
    fn hd7970_grid_matches_legacy_constants() {
        let g = GridSpec::HD7970;
        assert_eq!(g.cu_levels(), vec![4, 8, 12, 16, 20, 24, 28, 32]);
        assert_eq!(g.cu_level_count(), 8);
        assert_eq!(g.cu_freq_level_count(), 8);
        assert_eq!(g.mem_freq_level_count(), 7);
        assert_eq!(g.len(), 448);
        assert!(!g.is_empty());
        assert_eq!(g.bytes_per_clock(), 192.0);
    }

    #[test]
    fn snap_cu_freq_maps_dpm_states_onto_the_grid() {
        let g = GridSpec::HD7970;
        assert_eq!(g.snap_cu_freq(MegaHertz(300)), MegaHertz(300));
        assert_eq!(g.snap_cu_freq(MegaHertz(500)), MegaHertz(500));
        // 925 is 25 MHz from 900 and 75 MHz from 1000: snaps down.
        assert_eq!(g.snap_cu_freq(MegaHertz(925)), MegaHertz(900));
        assert_eq!(g.snap_cu_freq(MegaHertz(1000)), MegaHertz(1000));
        // Out-of-range clocks clamp to the grid ends.
        assert_eq!(g.snap_cu_freq(MegaHertz(100)), MegaHertz(300));
        assert_eq!(g.snap_cu_freq(MegaHertz(2000)), MegaHertz(1000));
    }

    #[test]
    fn catalog_round_trips_through_fromstr_and_display() {
        for name in DeviceSpec::catalog() {
            let spec: DeviceSpec = name.parse().expect(name);
            assert_eq!(spec.to_string(), name, "Display must return the name");
            let again: DeviceSpec = spec.to_string().parse().expect(name);
            assert_eq!(spec, again, "round trip must be lossless");
        }
        // Case-insensitive lookup, canonical Display.
        let spec: DeviceSpec = "V100".parse().unwrap();
        assert_eq!(spec.to_string(), "v100");
    }

    #[test]
    fn unknown_device_name_is_an_error_listing_the_catalog() {
        let err = "gtx480".parse::<DeviceSpec>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("gtx480"), "{msg}");
        for name in DeviceSpec::catalog() {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn fingerprints_are_distinct_across_the_catalog() {
        let prints: Vec<u64> = DeviceSpec::catalog()
            .iter()
            .map(|n| n.parse::<DeviceSpec>().unwrap().fingerprint())
            .collect();
        for i in 0..prints.len() {
            for j in (i + 1)..prints.len() {
                assert_ne!(prints[i], prints[j], "devices {i} and {j} alias");
            }
        }
        // Stable across calls.
        assert_eq!(
            DeviceSpec::hd7970().fingerprint(),
            DeviceSpec::hd7970().fingerprint()
        );
    }

    #[test]
    fn every_catalog_grid_is_internally_consistent() {
        for name in DeviceSpec::catalog() {
            let spec: DeviceSpec = name.parse().unwrap();
            let grid = spec.grid();
            assert_eq!(
                grid.cu_max, spec.gpu.max_cu,
                "{name}: grid cu_max must equal the descriptor's max_cu"
            );
            assert_eq!(grid.cu_levels().len(), grid.cu_level_count(), "{name}");
            assert_eq!(
                grid.cu_levels().last().copied(),
                Some(grid.cu_max),
                "{name}: the CU range must land exactly on cu_max"
            );
            assert_eq!(
                grid.cu_freq_levels().last().copied(),
                Some(grid.cu_freq_max),
                "{name}: the clock range must land exactly on cu_freq_max"
            );
            assert_eq!(
                grid.mem_freq_levels().last().copied(),
                Some(grid.mem_freq_max),
                "{name}: the bus range must land exactly on mem_freq_max"
            );
            assert_eq!(spec.config_space().len(), grid.len(), "{name}");
            // Every grid point constructs without error.
            for cfg in spec.config_space().iter() {
                assert!(spec.config_space().contains(cfg), "{name}: {cfg}");
            }
            // The DVFS table spans the grid's clock range.
            let states = spec.dvfs.states();
            assert!(states.len() >= 2, "{name}: need at least two DVFS states");
            assert_eq!(states[0].freq, grid.cu_freq_min, "{name}");
            assert_eq!(
                states.last().unwrap().freq,
                grid.cu_freq_max,
                "{name}: boost state must be the grid maximum"
            );
        }
    }

    #[test]
    fn hd7970_safe_state_matches_the_legacy_one() {
        let spec = DeviceSpec::hd7970();
        let safe = spec.safe_state();
        assert_eq!(safe.compute.cu_count(), 32);
        assert_eq!(safe.compute.freq(), MegaHertz(500));
        assert_eq!(safe.memory.bus_freq(), MegaHertz(1375));
    }

    #[test]
    fn safe_states_are_grid_valid_for_every_device() {
        for name in DeviceSpec::catalog() {
            let spec: DeviceSpec = name.parse().unwrap();
            let safe = spec.safe_state();
            assert!(
                spec.config_space().contains(safe),
                "{name}: safe state {safe} off the grid"
            );
            assert_eq!(safe.compute.cu_count(), spec.gpu.grid.cu_max, "{name}");
        }
    }

    #[test]
    fn peak_throughput_scales_match_the_hardware_params_table() {
        // Headline numbers, within rounding of the real parts.
        let v100 = DeviceSpec::v100();
        let peak = ComputeConfig::max_on(v100.grid()).peak_gflops_on(v100.grid());
        assert!((peak - 15360.0).abs() < 1.0, "v100 {peak} GFLOPS");
        let bw = MemoryConfig::max_on(v100.grid()).peak_bandwidth_on(v100.grid());
        assert!((bw.value() - 896.0).abs() < 1.0, "v100 {bw}");

        let h100 = DeviceSpec::h100();
        let peak = ComputeConfig::max_on(h100.grid()).peak_gflops_on(h100.grid());
        assert!((peak - 66890.0).abs() < 100.0, "h100 {peak} GFLOPS");
        let bw = MemoryConfig::max_on(h100.grid()).peak_bandwidth_on(h100.grid());
        assert!((bw.value() - 3328.0).abs() < 1.0, "h100 {bw}");

        let orin = DeviceSpec::jetson_orin();
        let peak = ComputeConfig::max_on(orin.grid()).peak_gflops_on(orin.grid());
        assert!((peak - 5324.8).abs() < 1.0, "jetson-orin {peak} GFLOPS");
        let bw = MemoryConfig::max_on(orin.grid()).peak_bandwidth_on(orin.grid());
        assert!((bw.value() - 204.8).abs() < 0.1, "jetson-orin {bw}");
    }

    #[test]
    fn hd7970_static_is_interned() {
        let a = DeviceSpec::hd7970_static();
        let b = DeviceSpec::hd7970_static();
        assert!(std::ptr::eq(a, b));
        assert_eq!(*a, DeviceSpec::hd7970());
    }
}
