//! Shared foundation types for the Harmonia (ISCA 2015) reproduction.
//!
//! This crate defines the vocabulary every other crate in the workspace
//! speaks:
//!
//! * [`units`] — zero-cost newtypes for physical quantities ([`MegaHertz`],
//!   [`Volts`], [`Watts`], [`Joules`], [`Seconds`], [`GigabytesPerSec`]).
//!   Using distinct types for frequencies, voltages, and energies prevents
//!   the classic "passed the memory clock where the core clock was expected"
//!   bug that a plain `f64` API invites.
//! * [`config`] — the hardware tunables of the AMD Radeon HD7970 platform the
//!   paper manages: number of active compute units, compute-unit frequency,
//!   and memory bus frequency, together with [`ConfigSpace`], the ~450-point
//!   design space the paper sweeps (Section 3.1).
//! * [`dvfs`] — the DPM voltage/frequency table of Table 1 (plus the 1 GHz
//!   boost state) and voltage interpolation for intermediate frequencies.
//! * [`device`] — the device catalog: [`DeviceSpec`] bundles a
//!   configuration grid ([`GridSpec`]), the simulator geometry
//!   ([`GpuDescriptor`]), a DVFS table, and the power-model calibration for
//!   each named part (`hd7970`, `v100`, `h100`, `jetson-orin`).
//! * [`session`] — the typed [`Session`] configuration centralizing the
//!   `HARMONIA_TRACE` / `HARMONIA_THREADS` / `HARMONIA_FAULT_SEED` /
//!   `HARMONIA_DEVICE` environment knobs behind one parser with
//!   programmatic overrides.
//!
//! # Examples
//!
//! ```
//! use harmonia_types::{ComputeConfig, MemoryConfig, HwConfig, ConfigSpace};
//!
//! let space = ConfigSpace::hd7970();
//! assert_eq!(space.len(), 448); // "approximately 450" in the paper
//!
//! let max = HwConfig::new(ComputeConfig::max_hd7970(), MemoryConfig::max_hd7970());
//! assert!(space.contains(max));
//! // Hardware ops/byte delivered by the platform at this configuration:
//! let ops_per_byte = max.hw_ops_per_byte();
//! assert!(ops_per_byte > 0.0);
//! ```

pub mod config;
pub mod device;
pub mod dvfs;
pub mod session;
pub mod units;

pub use config::{
    ComputeConfig, ConfigError, ConfigSpace, HwConfig, MemoryConfig, Tunable, TunableLevel,
};
pub use device::{
    ComputePowerParams, DevicePower, DeviceSpec, GpuDescriptor, GridSpec, MemoryPowerParams,
    ParseDeviceError,
};
pub use dvfs::{DpmState, DvfsTable};
pub use session::{
    Session, DEFAULT_FAULT_SEED, DEVICE_ENV, FAULT_SEED_ENV, THREADS_ENV, TRACE_ENV,
};
pub use units::{GigabytesPerSec, Joules, MegaHertz, Seconds, Volts, Watts};
