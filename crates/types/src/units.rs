//! Physical-quantity newtypes.
//!
//! All wrappers are `#[repr(transparent)]`-style single-field tuples with the
//! inner value accessible through `value()`/`From` conversions. Arithmetic is
//! implemented only where it is dimensionally meaningful (e.g. `Watts *
//! Seconds = Joules`), so unit errors surface at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw numeric value in the canonical unit.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` if the inner value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $unit)
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                Self(v)
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electrical power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
quantity!(
    /// Wall-clock time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Supply voltage in volts.
    Volts,
    "V"
);
quantity!(
    /// Data transfer bandwidth in (decimal) gigabytes per second.
    GigabytesPerSec,
    "GB/s"
);

/// Clock frequency in megahertz.
///
/// Stored as an integer because every frequency on the HD7970 platform is a
/// whole number of megahertz, which also makes `MegaHertz` usable as a map
/// key when tracking power-state residency (Figures 15 and 16).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MegaHertz(pub u32);

impl MegaHertz {
    /// Zero frequency.
    pub const ZERO: Self = Self(0);

    /// Returns the raw frequency value in MHz.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// Frequency in hertz as a float, for rate computations.
    #[inline]
    pub fn as_hz(self) -> f64 {
        f64::from(self.0) * 1.0e6
    }

    /// Frequency in gigahertz as a float.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        f64::from(self.0) * 1.0e-3
    }

    /// Saturating subtraction of a step in MHz.
    #[inline]
    pub fn saturating_sub(self, step: u32) -> Self {
        Self(self.0.saturating_sub(step))
    }
}

impl fmt::Display for MegaHertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

impl From<u32> for MegaHertz {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl From<MegaHertz> for u32 {
    fn from(v: MegaHertz) -> u32 {
        v.0
    }
}

impl Add for MegaHertz {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for MegaHertz {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for GigabytesPerSec {
    /// Bandwidth × time = bytes transferred (returned as a plain count).
    type Output = f64;
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * 1.0e9 * rhs.0
    }
}

impl GigabytesPerSec {
    /// Constructs a bandwidth from a raw bytes-per-second rate.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        Self(bps / 1.0e9)
    }

    /// The bandwidth expressed in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0 * 1.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_times_seconds_is_joules() {
        let e = Watts(250.0) * Seconds(2.0);
        assert_eq!(e, Joules(500.0));
        let e2 = Seconds(2.0) * Watts(250.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn joules_over_seconds_is_watts() {
        let p = Joules(500.0) / Seconds(2.0);
        assert_eq!(p, Watts(250.0));
    }

    #[test]
    fn joules_over_watts_is_seconds() {
        let t = Joules(500.0) / Watts(250.0);
        assert_eq!(t, Seconds(2.0));
    }

    #[test]
    fn like_ratio_is_dimensionless() {
        let ratio = Watts(100.0) / Watts(50.0);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn megahertz_conversions() {
        let f = MegaHertz(925);
        assert_eq!(f.as_hz(), 925.0e6);
        assert!((f.as_ghz() - 0.925).abs() < 1e-12);
        assert_eq!(f.value(), 925);
    }

    #[test]
    fn megahertz_is_ordered_and_hashable() {
        use std::collections::HashMap;
        let mut residency: HashMap<MegaHertz, f64> = HashMap::new();
        residency.insert(MegaHertz(475), 0.08);
        residency.insert(MegaHertz(1375), 0.25);
        assert!(MegaHertz(475) < MegaHertz(1375));
        assert_eq!(residency[&MegaHertz(475)], 0.08);
    }

    #[test]
    fn bandwidth_times_time_is_bytes() {
        let bytes = GigabytesPerSec(264.0) * Seconds(0.5);
        assert_eq!(bytes, 132.0e9);
    }

    #[test]
    fn bandwidth_byte_rate_round_trip() {
        let bw = GigabytesPerSec::from_bytes_per_sec(91.2e9);
        assert!((bw.value() - 91.2).abs() < 1e-9);
        assert!((bw.as_bytes_per_sec() - 91.2e9).abs() < 1.0);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.5)].into_iter().sum();
        assert_eq!(total, Watts(6.5));
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(format!("{}", MegaHertz(300)), "300 MHz");
        assert!(format!("{}", Watts(12.5)).ends_with(" W"));
        assert!(format!("{}", Joules(1.0)).ends_with(" J"));
        assert!(format!("{}", Seconds(1.0)).ends_with(" s"));
        assert!(format!("{}", Volts(0.85)).ends_with(" V"));
        assert!(format!("{}", GigabytesPerSec(264.0)).ends_with(" GB/s"));
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(Watts(3.0).max(Watts(5.0)), Watts(5.0));
        assert_eq!(Seconds(3.0).min(Seconds(5.0)), Seconds(3.0));
    }

    #[test]
    fn arithmetic_assignment() {
        let mut e = Joules(1.0);
        e += Joules(2.0);
        assert_eq!(e, Joules(3.0));
        e -= Joules(0.5);
        assert_eq!(e, Joules(2.5));
        assert_eq!(-e, Joules(-2.5));
    }

    #[test]
    fn scalar_scaling() {
        assert_eq!(Watts(10.0) * 2.0, Watts(20.0));
        assert_eq!(2.0 * Watts(10.0), Watts(20.0));
        assert_eq!(Watts(10.0) / 2.0, Watts(5.0));
    }
}
