//! Off-chip GDDR5 memory and DDR PHY power.
//!
//! Section 2.4 of the paper decomposes DRAM power into *background*,
//! *activation/pre-charge*, *read-write*, and *termination* power and
//! explains how bus frequency affects each:
//!
//! * lowering bus frequency lowers background, PLL, and PHY power;
//! * but it *increases* per-access read/write and termination energy
//!   "due to longer intervals between array accesses".
//!
//! This module models exactly those components. The memory voltage is fixed
//! (the platform cannot scale it — Section 3.3), so only frequency-dependent
//! and traffic-dependent terms vary; the paper's observation that savings
//! "would actually be greater if we are able to scale memory bus voltage" is
//! captured by [`MemoryPowerParams::voltage_scaling`], off by default to
//! mirror the real platform and available for what-if studies.

use harmonia_types::config::MEM_FREQ_MAX;
use harmonia_types::{HwConfig, Watts};
use serde::{Deserialize, Serialize};

// The parameter struct lives in the device catalog (`harmonia_types`) so
// each catalog entry carries its own memory calibration; re-exported here so
// existing `harmonia_power::memory::MemoryPowerParams` paths keep working.
pub use harmonia_types::device::MemoryPowerParams;

/// Result of evaluating the memory power model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemoryPower {
    /// DRAM background power (refresh, standby, clocking).
    pub background: Watts,
    /// DDR PHY and PLL power (integrated on the GPU die but counted as
    /// memory power per the paper's Equation 4 accounting).
    pub phy: Watts,
    /// Row activate/pre-charge power.
    pub activate: Watts,
    /// Array read/write power.
    pub read_write: Watts,
    /// I/O termination power.
    pub termination: Watts,
}

impl MemoryPower {
    /// Total memory-system power (the paper's MemPwr).
    pub fn total(&self) -> Watts {
        self.background + self.phy + self.activate + self.read_write + self.termination
    }
}

/// Evaluates memory power for a configuration and observed DRAM traffic on
/// the HD7970 (slowdown is measured against its 1375 MHz maximum bus clock).
///
/// * `dram_bytes_per_sec` — achieved DRAM read+write traffic.
pub fn memory_power(
    params: &MemoryPowerParams,
    cfg: HwConfig,
    dram_bytes_per_sec: f64,
) -> MemoryPower {
    memory_power_at(params, cfg, dram_bytes_per_sec, MEM_FREQ_MAX.as_ghz())
}

/// Evaluates memory power with an explicit reference (maximum) bus clock in
/// GHz — the device-grid-aware core of [`memory_power`]. Slow-clock access
/// penalties and the voltage-scaling what-if are both relative to
/// `f_max_ghz`.
pub fn memory_power_at(
    params: &MemoryPowerParams,
    cfg: HwConfig,
    dram_bytes_per_sec: f64,
    f_max_ghz: f64,
) -> MemoryPower {
    let f_ghz = cfg.memory.bus_freq().as_ghz();
    let dram_bytes_per_sec = dram_bytes_per_sec.max(0.0);

    // Hypothetical voltage scaling (off on the real platform).
    let v_scale = if params.voltage_scaling {
        let v_rel = 0.7 + 0.3 * (f_ghz / f_max_ghz);
        v_rel * v_rel
    } else {
        1.0
    };

    let background = Watts(params.background_per_ghz * f_ghz * v_scale);
    let phy = Watts((params.phy_static + params.phy_per_ghz * f_ghz) * v_scale);

    // Per-byte energies rise slightly as the bus slows down.
    let slowdown = (f_max_ghz / f_ghz - 1.0).max(0.0);
    let access_penalty = 1.0 + params.slow_clock_energy_penalty * slowdown;
    let pj_to_w = 1.0e-12 * dram_bytes_per_sec;
    let activate = Watts(params.activate_pj_per_byte * pj_to_w * v_scale);
    let read_write = Watts(params.rw_pj_per_byte * access_penalty * pj_to_w * v_scale);
    let termination = Watts(params.termination_pj_per_byte * access_penalty * pj_to_w * v_scale);

    MemoryPower {
        background,
        phy,
        activate,
        read_write,
        termination,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ComputeConfig, MegaHertz, MemoryConfig};

    fn cfg_mem(m: u32) -> HwConfig {
        HwConfig::new(
            ComputeConfig::max_hd7970(),
            MemoryConfig::new(MegaHertz(m)).unwrap(),
        )
    }

    #[test]
    fn idle_memory_draws_only_background_and_phy() {
        let p = memory_power(&MemoryPowerParams::default(), cfg_mem(1375), 0.0);
        assert!(p.background.value() > 0.0);
        assert!(p.phy.value() > 0.0);
        assert_eq!(p.activate, Watts(0.0));
        assert_eq!(p.read_write, Watts(0.0));
        assert_eq!(p.termination, Watts(0.0));
    }

    #[test]
    fn streaming_power_in_calibration_band() {
        // Full 264 GB/s stream at max bus clock: ~45-60 W of memory power.
        let p = memory_power(&MemoryPowerParams::default(), cfg_mem(1375), 264.0e9);
        let total = p.total().value();
        assert!(
            (40.0..65.0).contains(&total),
            "memory power {total} W outside calibration band"
        );
    }

    #[test]
    fn background_and_phy_track_frequency() {
        let params = MemoryPowerParams::default();
        let hi = memory_power(&params, cfg_mem(1375), 0.0);
        let lo = memory_power(&params, cfg_mem(475), 0.0);
        assert!(hi.background > lo.background);
        assert!(hi.phy > lo.phy);
        // Frequency-proportional parts scale ~2.9×.
        let ratio = hi.background.value() / lo.background.value();
        assert!((ratio - 1375.0 / 475.0).abs() < 1e-9);
    }

    #[test]
    fn per_byte_energy_rises_at_low_clock() {
        // Same traffic, slower bus: read/write + termination power is higher
        // per Section 2.4, even though background power drops.
        let params = MemoryPowerParams::default();
        let traffic = 80.0e9;
        let hi = memory_power(&params, cfg_mem(1375), traffic);
        let lo = memory_power(&params, cfg_mem(475), traffic);
        assert!(lo.read_write > hi.read_write);
        assert!(lo.termination > hi.termination);
        assert!(lo.background < hi.background);
    }

    #[test]
    fn lowering_clock_saves_net_power_for_light_traffic() {
        // The paper's Figure 5 scenario: compute-bound workload, little
        // memory traffic — dropping the bus clock must save power overall.
        let params = MemoryPowerParams::default();
        let traffic = 10.0e9;
        let hi = memory_power(&params, cfg_mem(1375), traffic);
        let lo = memory_power(&params, cfg_mem(475), traffic);
        assert!(lo.total() < hi.total());
    }

    #[test]
    fn traffic_monotonically_increases_power() {
        let params = MemoryPowerParams::default();
        let mut prev = 0.0;
        for gbps in [0.0, 50.0, 100.0, 200.0, 264.0] {
            let p = memory_power(&params, cfg_mem(1375), gbps * 1e9).total().value();
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn negative_traffic_treated_as_zero() {
        let params = MemoryPowerParams::default();
        let a = memory_power(&params, cfg_mem(1375), -5.0);
        let b = memory_power(&params, cfg_mem(1375), 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn voltage_scaling_what_if_saves_more() {
        let fixed = MemoryPowerParams::default();
        let scaled = MemoryPowerParams {
            voltage_scaling: true,
            ..MemoryPowerParams::default()
        };
        let traffic = 80.0e9;
        // At min clock the voltage-scaled model must be cheaper than fixed.
        let fixed_lo = memory_power(&fixed, cfg_mem(475), traffic).total();
        let scaled_lo = memory_power(&scaled, cfg_mem(475), traffic).total();
        assert!(scaled_lo < fixed_lo);
        // And the hi→lo saving is larger with voltage scaling (the paper's
        // "differences would actually be greater" remark).
        let fixed_hi = memory_power(&fixed, cfg_mem(1375), traffic).total();
        let scaled_hi = memory_power(&scaled, cfg_mem(1375), traffic).total();
        let fixed_saving = fixed_hi.value() - fixed_lo.value();
        let scaled_saving = scaled_hi.value() - scaled_lo.value();
        assert!(scaled_saving > fixed_saving);
    }
}
