//! GPU chip (compute-side) power: dynamic CV²f, leakage, and uncore.
//!
//! The HD7970's CUs share one frequency domain and one voltage plane
//! (Section 2.2), and inactive CUs are power gated (Section 6). Chip power is
//! modelled as
//!
//! ```text
//! P_chip = N_cu · C_cu · V² · f · a  +  N_cu · idle-clock fraction
//!        + leakage(N_cu, V) + uncore(f, V, traffic) + MC(f_mem, traffic)
//! ```
//!
//! where `a` is the measured VALU activity. The integrated memory controller
//! is part of GPUPwr in the paper's accounting (it notes the MC is "about 3%
//! of the overall memory power"), so it lives here, not in the DRAM model.

use harmonia_types::{DvfsTable, HwConfig, Watts};
use serde::{Deserialize, Serialize};

// The parameter struct lives in the device catalog (`harmonia_types`) so
// each catalog entry carries its own chip calibration; re-exported here so
// existing `harmonia_power::compute::ComputePowerParams` paths keep working.
pub use harmonia_types::device::ComputePowerParams;

/// Result of evaluating the chip power model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComputePower {
    /// Dynamic power of the active CUs (including idle clocking).
    pub cu_dynamic: Watts,
    /// Leakage of active CUs plus the uncore.
    pub leakage: Watts,
    /// Uncore dynamic power (L2, crossbar).
    pub uncore: Watts,
    /// Integrated memory-controller power.
    pub mem_controller: Watts,
}

impl ComputePower {
    /// Total chip power (the paper's GPUPwr).
    pub fn total(&self) -> Watts {
        self.cu_dynamic + self.leakage + self.uncore + self.mem_controller
    }
}

/// Evaluates chip power for a configuration and activity level.
///
/// * `valu_activity` — fraction of time CU SIMDs are issuing (0..1).
/// * `dram_traffic_fraction` — achieved DRAM bandwidth over peak (0..1),
///   which drives uncore and MC switching.
pub fn chip_power(
    params: &ComputePowerParams,
    dvfs: &DvfsTable,
    cfg: HwConfig,
    valu_activity: f64,
    dram_traffic_fraction: f64,
) -> ComputePower {
    let valu_activity = valu_activity.clamp(0.0, 1.0);
    let dram_traffic_fraction = dram_traffic_fraction.clamp(0.0, 1.0);

    let v = dvfs.voltage_for(cfg.compute.freq());
    let v2 = v.value() * v.value();
    let f_ghz = cfg.compute.freq().as_ghz();
    let n_cu = f64::from(cfg.compute.cu_count());

    // Active CUs burn idle-clock power all the time and full switching power
    // while issuing.
    let per_cu_full = params.c_dyn_per_cu * v2 * f_ghz;
    let activity_share =
        params.idle_clock_fraction + (1.0 - params.idle_clock_fraction) * valu_activity;
    let cu_dynamic = Watts(n_cu * per_cu_full * activity_share);

    // Leakage scales super-linearly with voltage; gated CUs leak nothing.
    let leak_scale = (v.value() / params.leak_ref_voltage.value()).powf(params.leak_voltage_exponent);
    let leakage = Watts((n_cu * params.leak_per_cu_ref + params.leak_uncore_ref) * leak_scale);

    // Uncore switches with the compute clock and with L2↔DRAM traffic.
    let uncore = Watts(
        params.c_dyn_uncore * v2 * f_ghz + params.uncore_traffic_coeff * dram_traffic_fraction,
    );

    // The integrated MC runs in the memory clock domain.
    let f_mem_ghz = cfg.memory.bus_freq().as_ghz();
    let mem_controller = Watts(
        params.mc_per_mem_ghz * f_mem_ghz + params.mc_traffic_coeff * dram_traffic_fraction,
    );

    ComputePower {
        cu_dynamic,
        leakage,
        uncore,
        mem_controller,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ComputeConfig, MegaHertz, MemoryConfig};

    fn cfg(cu: u32, f: u32, m: u32) -> HwConfig {
        HwConfig::new(
            ComputeConfig::new(cu, MegaHertz(f)).unwrap(),
            MemoryConfig::new(MegaHertz(m)).unwrap(),
        )
    }

    #[test]
    fn full_activity_max_config_in_expected_band() {
        let p = chip_power(
            &ComputePowerParams::default(),
            &DvfsTable::hd7970(),
            HwConfig::max_hd7970(),
            1.0,
            0.2,
        );
        let total = p.total().value();
        assert!(
            (150.0..230.0).contains(&total),
            "chip power {total} W outside calibration band"
        );
    }

    #[test]
    fn power_monotone_in_cu_count() {
        let params = ComputePowerParams::default();
        let dvfs = DvfsTable::hd7970();
        let mut prev = 0.0;
        for cu in (4..=32).step_by(4) {
            let p = chip_power(&params, &dvfs, cfg(cu, 900, 1375), 0.8, 0.5)
                .total()
                .value();
            assert!(p > prev, "not monotone at {cu} CUs");
            prev = p;
        }
    }

    #[test]
    fn power_monotone_in_frequency() {
        let params = ComputePowerParams::default();
        let dvfs = DvfsTable::hd7970();
        let mut prev = 0.0;
        for f in (300..=1000).step_by(100) {
            let p = chip_power(&params, &dvfs, cfg(32, f, 1375), 0.8, 0.5)
                .total()
                .value();
            assert!(p > prev, "not monotone at {f} MHz");
            prev = p;
        }
    }

    #[test]
    fn idle_chip_still_draws_clock_and_leakage() {
        let p = chip_power(
            &ComputePowerParams::default(),
            &DvfsTable::hd7970(),
            HwConfig::max_hd7970(),
            0.0,
            0.0,
        );
        assert!(p.cu_dynamic.value() > 0.0, "idle clocking should draw power");
        assert!(p.leakage.value() > 0.0);
    }

    #[test]
    fn gating_cus_cuts_both_dynamic_and_leakage() {
        let params = ComputePowerParams::default();
        let dvfs = DvfsTable::hd7970();
        let full = chip_power(&params, &dvfs, cfg(32, 900, 1375), 0.8, 0.5);
        let quarter = chip_power(&params, &dvfs, cfg(8, 900, 1375), 0.8, 0.5);
        assert!(quarter.cu_dynamic.value() < full.cu_dynamic.value() / 3.0);
        assert!(quarter.leakage < full.leakage);
    }

    #[test]
    fn dvfs_gives_superlinear_savings() {
        // Halving frequency should cut dynamic power by more than half
        // because voltage drops too.
        let params = ComputePowerParams::default();
        let dvfs = DvfsTable::hd7970();
        let hi = chip_power(&params, &dvfs, cfg(32, 1000, 1375), 1.0, 0.0);
        let lo = chip_power(&params, &dvfs, cfg(32, 500, 1375), 1.0, 0.0);
        assert!(lo.cu_dynamic.value() < 0.5 * hi.cu_dynamic.value());
    }

    #[test]
    fn mc_power_tracks_memory_clock() {
        let params = ComputePowerParams::default();
        let dvfs = DvfsTable::hd7970();
        let hi = chip_power(&params, &dvfs, cfg(32, 900, 1375), 0.5, 0.5);
        let lo = chip_power(&params, &dvfs, cfg(32, 900, 475), 0.5, 0.5);
        assert!(hi.mem_controller > lo.mem_controller);
    }

    #[test]
    fn activity_clamped() {
        let params = ComputePowerParams::default();
        let dvfs = DvfsTable::hd7970();
        let a = chip_power(&params, &dvfs, HwConfig::max_hd7970(), 2.0, 2.0);
        let b = chip_power(&params, &dvfs, HwConfig::max_hd7970(), 1.0, 1.0);
        assert_eq!(a, b);
    }
}
