//! Analytic power model of the AMD Radeon HD7970 graphics card.
//!
//! The paper measures three quantities with a National Instruments DAQ
//! (Section 6):
//!
//! * **GPUCardPwr** — total card power at the PCIe connector,
//! * **GPUPwr** — GPU chip power (compute + integrated memory controller),
//! * **OtherPwr** — fan, voltage regulators, board losses (held constant by
//!   pinning the fan at maximum RPM),
//!
//! and derives memory power as `MemPwr = GPUCardPwr − GPUPwr − OtherPwr`
//! (Equation 4). This crate reproduces those observables analytically:
//!
//! * [`compute`] — per-CU dynamic CV²f power, voltage-dependent leakage, and
//!   uncore (L2/crossbar) power; inactive CUs are power gated.
//! * [`memory`] — GDDR5 power split into background, activate/pre-charge,
//!   read/write, and termination components plus the DDR PHY and PLL
//!   (Section 2.4 enumerates exactly these components), at the platform's
//!   fixed memory voltage.
//! * [`model`] — [`PowerModel`] combining the pieces into a
//!   [`PowerBreakdown`] for any ([`HwConfig`], [`Activity`]) pair.
//! * [`trace`] — a 1 kHz [`PowerTrace`] sampler mimicking the paper's DAQ
//!   setup, with energy integration.
//!
//! Absolute watt values are calibrated to the published *shapes* (Figures 1,
//! 4 and 5), not to the authors' exact card — see `DESIGN.md`.
//!
//! [`HwConfig`]: harmonia_types::HwConfig
//!
//! # Examples
//!
//! ```
//! use harmonia_power::{Activity, PowerModel};
//! use harmonia_types::HwConfig;
//!
//! let model = PowerModel::hd7970();
//! let busy = Activity::streaming(0.4, 0.9); // moderately busy ALUs, hot memory
//! let p = model.breakdown(HwConfig::max_hd7970(), &busy);
//! assert!(p.card_pwr().value() > 100.0);
//! assert!(p.mem_pwr().value() > 0.0);
//! ```

pub mod compute;
pub mod memory;
pub mod model;
pub mod thermal;
pub mod trace;

pub use compute::ComputePowerParams;
pub use memory::MemoryPowerParams;
pub use model::{Activity, PowerBreakdown, PowerModel};
pub use thermal::{ThermalModel, ThermalParams};
pub use trace::{PowerSample, PowerTrace};
