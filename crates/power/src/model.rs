//! The combined card power model and its observable breakdown.

use crate::compute::{chip_power, ComputePowerParams};
use crate::memory::{memory_power_at, MemoryPowerParams};
use harmonia_types::{DeviceSpec, DvfsTable, GridSpec, HwConfig, Watts};
use serde::{Deserialize, Serialize};

/// Activity factors the power model consumes, produced by the simulator's
/// counters for each kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Activity {
    /// Fraction of time the vector ALUs are issuing (VALUBusy/100 ×
    /// VALUUtilization/100) — drives CU dynamic power.
    pub valu_activity: f64,
    /// Achieved DRAM traffic in bytes per second — drives DRAM access power.
    pub dram_bytes_per_sec: f64,
    /// Achieved DRAM bandwidth over the configuration's peak (0..1) — the
    /// icActivity metric; drives uncore and MC switching.
    pub dram_traffic_fraction: f64,
}

impl Activity {
    /// Convenience constructor for a streaming workload on the HD7970:
    /// `valu` ALU activity and a memory system running at `traffic_fraction`
    /// of the maximum 264 GB/s.
    pub fn streaming(valu: f64, traffic_fraction: f64) -> Self {
        let traffic_fraction = traffic_fraction.clamp(0.0, 1.0);
        Self {
            valu_activity: valu.clamp(0.0, 1.0),
            dram_bytes_per_sec: traffic_fraction * 264.0e9,
            dram_traffic_fraction: traffic_fraction,
        }
    }

    /// Device-grid-aware [`streaming`](Self::streaming): traffic is
    /// `traffic_fraction` of the grid's peak bandwidth at the maximum bus
    /// clock. Identical to `streaming` on the HD7970 grid
    /// (1375 MHz × 192 B/clk = 264 GB/s exactly).
    pub fn streaming_on(grid: &GridSpec, valu: f64, traffic_fraction: f64) -> Self {
        let traffic_fraction = traffic_fraction.clamp(0.0, 1.0);
        let peak = grid.mem_freq_max.as_hz() * grid.bytes_per_clock();
        Self {
            valu_activity: valu.clamp(0.0, 1.0),
            dram_bytes_per_sec: traffic_fraction * peak,
            dram_traffic_fraction: traffic_fraction,
        }
    }

    /// A fully idle card.
    pub fn idle() -> Self {
        Self::default()
    }
}

/// Full power breakdown of the card at one operating point, mirroring the
/// paper's measurement taxonomy (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// CU dynamic power (switching + idle clocking).
    pub cu_dynamic: Watts,
    /// Chip leakage (CUs + uncore).
    pub leakage: Watts,
    /// Uncore dynamic power (L2, crossbar, command processor).
    pub uncore: Watts,
    /// Integrated memory-controller power (counted inside GPUPwr, as in the
    /// paper — "memory controller power is not included in measured memory
    /// power, instead it is part of GPUPwr").
    pub mem_controller: Watts,
    /// DDR PHY + PLL power (counted inside MemPwr per Equation 4).
    pub phy: Watts,
    /// DRAM background power.
    pub dram_background: Watts,
    /// DRAM activate/pre-charge power.
    pub dram_activate: Watts,
    /// DRAM array read/write power.
    pub dram_read_write: Watts,
    /// DRAM I/O termination power.
    pub dram_termination: Watts,
    /// Fan, voltage regulators, board trace losses — constant because the
    /// fan is pinned at maximum RPM.
    pub other: Watts,
}

impl PowerBreakdown {
    /// GPU chip power — the paper's **GPUPwr** (compute + integrated MC).
    pub fn gpu_pwr(&self) -> Watts {
        self.cu_dynamic + self.leakage + self.uncore + self.mem_controller
    }

    /// Memory power — the paper's **MemPwr** (off-chip GDDR5 + DDR PHYs),
    /// i.e. Equation 4's `GPUCardPwr − GPUPwr − OtherPwr`.
    pub fn mem_pwr(&self) -> Watts {
        self.phy
            + self.dram_background
            + self.dram_activate
            + self.dram_read_write
            + self.dram_termination
    }

    /// Rest-of-card power — the paper's **OtherPwr**.
    pub fn other_pwr(&self) -> Watts {
        self.other
    }

    /// Total card power at the PCIe connector — the paper's **GPUCardPwr**.
    pub fn card_pwr(&self) -> Watts {
        self.gpu_pwr() + self.mem_pwr() + self.other_pwr()
    }
}

/// The calibrated card power model of one device (default: the HD7970).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PowerModel {
    compute: ComputePowerParams,
    memory: MemoryPowerParams,
    dvfs: DvfsTable,
    other: Watts,
    grid: GridSpec,
}

impl PowerModel {
    /// The default calibration for the HD7970 test bed.
    pub fn hd7970() -> Self {
        Self {
            compute: ComputePowerParams::default(),
            memory: MemoryPowerParams::default(),
            dvfs: DvfsTable::hd7970(),
            other: Watts(33.0),
            grid: GridSpec::HD7970,
        }
    }

    /// The power model of a catalog device: its calibration, DVFS table,
    /// and grid. `for_device(&DeviceSpec::hd7970())` equals `hd7970()`.
    pub fn for_device(spec: &DeviceSpec) -> Self {
        Self {
            compute: spec.power.compute.clone(),
            memory: spec.power.memory.clone(),
            dvfs: spec.dvfs.clone(),
            other: spec.power.other,
            grid: spec.gpu.grid,
        }
    }

    /// A forward-looking *on-package stacked memory* calibration — the
    /// future system the paper's conclusion points at ("compute and memory
    /// will share tighter package power envelopes"). Per-byte DRAM energies
    /// and interface power drop (short in-package links, no board-level
    /// termination), and the board overhead shrinks; compute is unchanged.
    pub fn stacked_package() -> Self {
        Self {
            compute: ComputePowerParams::default(),
            memory: MemoryPowerParams {
                background_per_ghz: 6.0,
                phy_per_ghz: 2.5,
                phy_static: 1.0,
                activate_pj_per_byte: 10.0,
                rw_pj_per_byte: 28.0,
                termination_pj_per_byte: 4.0,
                slow_clock_energy_penalty: 0.04,
                voltage_scaling: true, // on-package rails are scalable
            },
            dvfs: DvfsTable::hd7970(),
            other: Watts(18.0),
            grid: GridSpec::HD7970,
        }
    }

    /// Builds a model with custom parameters on the HD7970 grid (for
    /// calibration studies).
    pub fn with_params(
        compute: ComputePowerParams,
        memory: MemoryPowerParams,
        dvfs: DvfsTable,
        other: Watts,
    ) -> Self {
        Self {
            compute,
            memory,
            dvfs,
            other,
            grid: GridSpec::HD7970,
        }
    }

    /// Rebinds the model to another device grid (for what-if studies that
    /// start from [`with_params`](Self::with_params) on a catalog device).
    pub fn with_grid(mut self, grid: GridSpec) -> Self {
        self.grid = grid;
        self
    }

    /// The DVFS table the model uses for voltage lookup.
    pub fn dvfs(&self) -> &DvfsTable {
        &self.dvfs
    }

    /// The configuration grid of the device this model is calibrated for.
    /// Governors derive grid-stepping bounds from here, so a model built by
    /// [`for_device`](Self::for_device) steps on its own device's lattice.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Evaluates the full card power breakdown at `cfg` under `activity`.
    pub fn breakdown(&self, cfg: HwConfig, activity: &Activity) -> PowerBreakdown {
        let chip = chip_power(
            &self.compute,
            &self.dvfs,
            cfg,
            activity.valu_activity,
            activity.dram_traffic_fraction,
        );
        let mem = memory_power_at(
            &self.memory,
            cfg,
            activity.dram_bytes_per_sec,
            self.grid.mem_freq_max.as_ghz(),
        );
        PowerBreakdown {
            cu_dynamic: chip.cu_dynamic,
            leakage: chip.leakage,
            uncore: chip.uncore,
            mem_controller: chip.mem_controller,
            phy: mem.phy,
            dram_background: mem.background,
            dram_activate: mem.activate,
            dram_read_write: mem.read_write,
            dram_termination: mem.termination,
            other: self.other,
        }
    }

    /// Total card power — shorthand for `breakdown(..).card_pwr()`.
    pub fn card_pwr(&self, cfg: HwConfig, activity: &Activity) -> Watts {
        self.breakdown(cfg, activity).card_pwr()
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::hd7970()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ComputeConfig, MegaHertz, MemoryConfig};

    fn cfg(cu: u32, f: u32, m: u32) -> HwConfig {
        HwConfig::new(
            ComputeConfig::new(cu, MegaHertz(f)).unwrap(),
            MemoryConfig::new(MegaHertz(m)).unwrap(),
        )
    }

    #[test]
    fn eq4_accounting_is_consistent() {
        let model = PowerModel::hd7970();
        let p = model.breakdown(HwConfig::max_hd7970(), &Activity::streaming(0.5, 0.8));
        let derived_mem = p.card_pwr() - p.gpu_pwr() - p.other_pwr();
        assert!((derived_mem.value() - p.mem_pwr().value()).abs() < 1e-9);
    }

    #[test]
    fn memory_is_significant_for_memory_bound_work() {
        // Figure 1: memory is a major consumer for memory-intensive
        // workloads: expect ≥20% of card power.
        let model = PowerModel::hd7970();
        let p = model.breakdown(HwConfig::max_hd7970(), &Activity::streaming(0.25, 0.95));
        let share = p.mem_pwr() / p.card_pwr();
        assert!(share > 0.20, "memory share {share} too small");
        assert!(share < 0.50, "memory share {share} implausibly large");
    }

    #[test]
    fn compute_config_span_is_large() {
        // Figure 4: board power varies by roughly 70% across compute
        // configurations at fixed max memory bandwidth.
        let model = PowerModel::hd7970();
        let act = Activity::streaming(0.3, 0.9);
        let hi = model.card_pwr(cfg(32, 1000, 1375), &act).value();
        let lo = model.card_pwr(cfg(4, 300, 1375), &act).value();
        let span = (hi - lo) / lo;
        assert!(
            (0.4..1.2).contains(&span),
            "compute-config power span {span} outside Figure 4 band"
        );
    }

    #[test]
    fn memory_config_span_is_modest() {
        // Figure 5: ~10% power variation across memory configs at the max
        // compute configuration, fixed memory voltage.
        let model = PowerModel::hd7970();
        let act = Activity::streaming(1.0, 0.05);
        let hi = model.card_pwr(cfg(32, 1000, 1375), &act).value();
        let lo = model.card_pwr(cfg(32, 1000, 475), &act).value();
        let span = (hi - lo) / hi;
        assert!(
            (0.04..0.18).contains(&span),
            "memory-config power span {span} outside Figure 5 band"
        );
    }

    #[test]
    fn other_power_is_constant() {
        let model = PowerModel::hd7970();
        let a = model.breakdown(cfg(4, 300, 475), &Activity::idle());
        let b = model.breakdown(cfg(32, 1000, 1375), &Activity::streaming(1.0, 1.0));
        assert_eq!(a.other_pwr(), b.other_pwr());
    }

    #[test]
    fn card_power_monotone_in_each_tunable() {
        let model = PowerModel::hd7970();
        let act = Activity::streaming(0.6, 0.6);
        assert!(model.card_pwr(cfg(8, 500, 925), &act) < model.card_pwr(cfg(16, 500, 925), &act));
        assert!(model.card_pwr(cfg(8, 500, 925), &act) < model.card_pwr(cfg(8, 800, 925), &act));
        assert!(model.card_pwr(cfg(8, 500, 475), &act) < model.card_pwr(cfg(8, 500, 1375), &act));
    }

    #[test]
    fn max_config_tdp_plausible() {
        let model = PowerModel::hd7970();
        let p = model.card_pwr(HwConfig::max_hd7970(), &Activity::streaming(1.0, 0.9));
        assert!(
            (200.0..300.0).contains(&p.value()),
            "card power {p} not in HD7970 TDP ballpark"
        );
    }

    #[test]
    fn stacked_package_memory_is_cheaper() {
        let discrete = PowerModel::hd7970();
        let stacked = PowerModel::stacked_package();
        let act = Activity::streaming(0.3, 0.9);
        let cfg = HwConfig::max_hd7970();
        let d = discrete.breakdown(cfg, &act);
        let s = stacked.breakdown(cfg, &act);
        assert!(s.mem_pwr() < d.mem_pwr() * 0.7, "stacked memory should be much cheaper");
        assert!(s.other_pwr() < d.other_pwr());
        // Compute side is identical.
        assert_eq!(s.cu_dynamic, d.cu_dynamic);
    }

    #[test]
    fn for_device_hd7970_equals_the_legacy_model() {
        let legacy = PowerModel::hd7970();
        let device = PowerModel::for_device(&DeviceSpec::hd7970());
        assert_eq!(legacy, device);
        // And it evaluates bit-identically.
        let act = Activity::streaming(0.5, 0.8);
        let cfg = HwConfig::max_hd7970();
        assert_eq!(legacy.breakdown(cfg, &act), device.breakdown(cfg, &act));
        assert_eq!(
            Activity::streaming(0.5, 0.8),
            Activity::streaming_on(device.grid(), 0.5, 0.8)
        );
    }

    #[test]
    fn catalog_device_tdps_are_plausible() {
        // Busy streaming power at each device's max config lands near its
        // published board/module envelope.
        let bands = [
            ("hd7970", 200.0, 300.0),
            ("v100", 230.0, 350.0),
            ("h100", 500.0, 800.0),
            ("jetson-orin", 25.0, 70.0),
        ];
        for (name, lo, hi) in bands {
            let spec: DeviceSpec = name.parse().unwrap();
            let model = PowerModel::for_device(&spec);
            let cfg = HwConfig::max_on(spec.grid());
            let act = Activity::streaming_on(spec.grid(), 1.0, 0.9);
            let p = model.card_pwr(cfg, &act).value();
            assert!(
                (lo..hi).contains(&p),
                "{name}: card power {p:.0} W outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn catalog_devices_save_power_at_lower_operating_points() {
        // The governor premise holds on every device: stepping any tunable
        // down from max reduces card power.
        for name in DeviceSpec::catalog() {
            let spec: DeviceSpec = name.parse().unwrap();
            let model = PowerModel::for_device(&spec);
            let act = Activity::streaming_on(spec.grid(), 0.6, 0.6);
            let max = HwConfig::max_on(spec.grid());
            let p_max = model.card_pwr(max, &act);
            for t in harmonia_types::Tunable::ALL {
                let down = max.step_down_on(spec.grid(), t).unwrap();
                assert!(
                    model.card_pwr(down, &act) < p_max,
                    "{name}: stepping {t} down did not save power"
                );
            }
        }
    }

    #[test]
    fn idle_power_well_below_busy() {
        let model = PowerModel::hd7970();
        let idle = model.card_pwr(HwConfig::max_hd7970(), &Activity::idle());
        let busy = model.card_pwr(HwConfig::max_hd7970(), &Activity::streaming(1.0, 0.9));
        assert!(idle.value() < 0.7 * busy.value());
    }
}
