//! DAQ-style power tracing and energy integration.
//!
//! The paper profiles power "using a National Instruments data acquisition
//! (DAQ) card ... with a sampling frequency of 1KHz" (Section 6).
//! [`PowerTrace`] plays that role for the simulator: execution segments are
//! appended with their (constant) power breakdown, and the trace can be
//! resampled at a fixed rate or integrated into energy.

use crate::model::PowerBreakdown;
use harmonia_types::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One sample of the virtual DAQ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Timestamp of the sample since trace start.
    pub at: Seconds,
    /// Card power at the sample instant.
    pub card: Watts,
    /// GPU chip power at the sample instant.
    pub gpu: Watts,
    /// Memory power at the sample instant.
    pub mem: Watts,
}

/// A piecewise-constant power trace built from execution segments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    // (segment end time, breakdown) — start time is the previous end.
    segments: Vec<(Seconds, PowerBreakdown)>,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an execution segment of `duration` at constant `power`.
    /// Zero- or negative-duration segments are ignored.
    pub fn push(&mut self, duration: Seconds, power: PowerBreakdown) {
        if duration.value() <= 0.0 {
            return;
        }
        let end = Seconds(self.duration().value() + duration.value());
        self.segments.push((end, power));
    }

    /// Total trace duration.
    pub fn duration(&self) -> Seconds {
        self.segments.last().map_or(Seconds(0.0), |(end, _)| *end)
    }

    /// Number of segments recorded.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total card energy: exact piecewise integral of card power over time.
    pub fn card_energy(&self) -> Joules {
        self.energy_by(|p| p.card_pwr())
    }

    /// Total GPU chip energy.
    pub fn gpu_energy(&self) -> Joules {
        self.energy_by(|p| p.gpu_pwr())
    }

    /// Total memory energy.
    pub fn mem_energy(&self) -> Joules {
        self.energy_by(|p| p.mem_pwr())
    }

    /// Integral of an arbitrary power component over the trace.
    pub fn energy_by<F: Fn(&PowerBreakdown) -> Watts>(&self, component: F) -> Joules {
        let mut start = Seconds(0.0);
        let mut total = Joules(0.0);
        for (end, p) in &self.segments {
            total += component(p) * (*end - start);
            start = *end;
        }
        total
    }

    /// Time-average card power (total energy over duration). Zero for an
    /// empty trace.
    pub fn average_card_power(&self) -> Watts {
        let d = self.duration();
        if d.value() <= 0.0 {
            return Watts(0.0);
        }
        self.card_energy() / d
    }

    /// Resamples the trace at `rate_hz` like the paper's 1 kHz DAQ,
    /// returning one [`PowerSample`] per tick (sample-and-hold).
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive.
    pub fn sample(&self, rate_hz: f64) -> Vec<PowerSample> {
        assert!(rate_hz > 0.0, "sampling rate must be positive");
        let period = 1.0 / rate_hz;
        let mut out = Vec::new();
        let mut seg = 0;
        let mut t = 0.0;
        let total = self.duration().value();
        while t < total && seg < self.segments.len() {
            while seg < self.segments.len() && self.segments[seg].0.value() <= t {
                seg += 1;
            }
            if seg >= self.segments.len() {
                break;
            }
            let p = &self.segments[seg].1;
            out.push(PowerSample {
                at: Seconds(t),
                card: p.card_pwr(),
                gpu: p.gpu_pwr(),
                mem: p.mem_pwr(),
            });
            t += period;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(card_core: f64) -> PowerBreakdown {
        PowerBreakdown {
            cu_dynamic: Watts(card_core),
            ..PowerBreakdown::default()
        }
    }

    #[test]
    fn empty_trace_is_zero() {
        let t = PowerTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.duration(), Seconds(0.0));
        assert_eq!(t.card_energy(), Joules(0.0));
        assert_eq!(t.average_card_power(), Watts(0.0));
        assert!(t.sample(1000.0).is_empty());
    }

    #[test]
    fn energy_is_exact_piecewise_integral() {
        let mut t = PowerTrace::new();
        t.push(Seconds(2.0), flat(100.0));
        t.push(Seconds(1.0), flat(50.0));
        assert_eq!(t.duration(), Seconds(3.0));
        assert_eq!(t.card_energy(), Joules(250.0));
        assert!((t.average_card_power().value() - 250.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn component_energies_split() {
        let p = PowerBreakdown {
            cu_dynamic: Watts(70.0),
            dram_read_write: Watts(30.0),
            other: Watts(10.0),
            ..PowerBreakdown::default()
        };
        let mut t = PowerTrace::new();
        t.push(Seconds(2.0), p);
        assert_eq!(t.gpu_energy(), Joules(140.0));
        assert_eq!(t.mem_energy(), Joules(60.0));
        assert_eq!(t.card_energy(), Joules(220.0));
    }

    #[test]
    fn zero_duration_segments_ignored() {
        let mut t = PowerTrace::new();
        t.push(Seconds(0.0), flat(100.0));
        t.push(Seconds(-1.0), flat(100.0));
        assert!(t.is_empty());
    }

    #[test]
    fn sampling_at_1khz_counts_ticks() {
        let mut t = PowerTrace::new();
        t.push(Seconds(0.01), flat(100.0));
        let samples = t.sample(1000.0);
        assert_eq!(samples.len(), 10);
        assert_eq!(samples[0].at, Seconds(0.0));
        assert_eq!(samples[0].card, Watts(100.0));
    }

    #[test]
    fn sampling_tracks_segment_changes() {
        let mut t = PowerTrace::new();
        t.push(Seconds(0.002), flat(100.0));
        t.push(Seconds(0.002), flat(50.0));
        let samples = t.sample(1000.0);
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[1].card, Watts(100.0));
        assert_eq!(samples[2].card, Watts(50.0));
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_panics() {
        PowerTrace::new().sample(0.0);
    }
}
