//! First-order thermal model of the graphics card.
//!
//! The stock power manager "optimizes performance for thermal design
//! power (TDP)-constrained scenarios ... based on power and thermal
//! headroom availability" (Section 2.3). To reproduce that behaviour — and
//! to study Harmonia under a shared package envelope (key insight 6) — the
//! card is modelled as a single thermal RC node:
//!
//! ```text
//! T(t+Δt) = T_amb + (T(t) − T_amb)·e^(−Δt/τ) + P·R·(1 − e^(−Δt/τ))
//! ```
//!
//! with junction-to-ambient resistance `R` and time constant `τ`.

use harmonia_types::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Parameters of the card's thermal path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Junction-to-ambient thermal resistance, °C/W (fan at max RPM).
    pub resistance_c_per_w: f64,
    /// Thermal time constant, seconds.
    pub time_constant_s: f64,
    /// Junction temperature limit, °C.
    pub limit_c: f64,
}

impl Default for ThermalParams {
    /// HD7970-like defaults: 250 W steady state sits at ≈95 °C in a 25 °C
    /// ambient with the fan pinned at maximum.
    fn default() -> Self {
        Self {
            ambient_c: 25.0,
            resistance_c_per_w: 0.28,
            time_constant_s: 8.0,
            limit_c: 95.0,
        }
    }
}

/// The card's thermal state, advanced by [`ThermalModel::step`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    params: ThermalParams,
    temperature_c: f64,
}

impl ThermalModel {
    /// Creates a model at ambient temperature.
    pub fn new(params: ThermalParams) -> Self {
        Self {
            temperature_c: params.ambient_c,
            params,
        }
    }

    /// Current junction temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// The model parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Steady-state temperature at a constant power draw.
    pub fn steady_state_c(&self, power: Watts) -> f64 {
        self.params.ambient_c + power.value() * self.params.resistance_c_per_w
    }

    /// Advances the state by `dt` at constant `power`; returns the new
    /// temperature. Non-positive `dt` leaves the state unchanged.
    pub fn step(&mut self, power: Watts, dt: Seconds) -> f64 {
        let dt = dt.value();
        if dt > 0.0 {
            let decay = (-dt / self.params.time_constant_s).exp();
            let target = self.steady_state_c(power);
            self.temperature_c = target + (self.temperature_c - target) * decay;
        }
        self.temperature_c
    }

    /// Thermal headroom in °C (negative when over the limit).
    pub fn headroom_c(&self) -> f64 {
        self.params.limit_c - self.temperature_c
    }

    /// Whether the junction exceeds its limit.
    pub fn over_limit(&self) -> bool {
        self.headroom_c() < 0.0
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::new(ThermalParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient_with_full_headroom() {
        let m = ThermalModel::default();
        assert_eq!(m.temperature_c(), 25.0);
        assert!((m.headroom_c() - 70.0).abs() < 1e-12);
        assert!(!m.over_limit());
    }

    #[test]
    fn steady_state_matches_tdp_calibration() {
        let m = ThermalModel::default();
        assert!((m.steady_state_c(Watts(250.0)) - 95.0).abs() < 1e-9);
    }

    #[test]
    fn converges_to_steady_state() {
        let mut m = ThermalModel::default();
        for _ in 0..100 {
            m.step(Watts(250.0), Seconds(1.0));
        }
        assert!((m.temperature_c() - 95.0).abs() < 0.1);
    }

    #[test]
    fn single_step_moves_monotonically_toward_target() {
        let mut m = ThermalModel::default();
        let t1 = m.step(Watts(200.0), Seconds(1.0));
        assert!(t1 > 25.0 && t1 < m.steady_state_c(Watts(200.0)));
        let t2 = m.step(Watts(200.0), Seconds(1.0));
        assert!(t2 > t1);
    }

    #[test]
    fn cooling_when_power_drops() {
        let mut m = ThermalModel::default();
        for _ in 0..50 {
            m.step(Watts(250.0), Seconds(1.0));
        }
        let hot = m.temperature_c();
        m.step(Watts(50.0), Seconds(5.0));
        assert!(m.temperature_c() < hot);
    }

    #[test]
    fn over_limit_detection() {
        let mut m = ThermalModel::default();
        for _ in 0..100 {
            m.step(Watts(300.0), Seconds(1.0));
        }
        assert!(m.over_limit());
        assert!(m.headroom_c() < 0.0);
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut m = ThermalModel::default();
        let before = m.temperature_c();
        m.step(Watts(250.0), Seconds(0.0));
        assert_eq!(m.temperature_c(), before);
    }
}
